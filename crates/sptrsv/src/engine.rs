//! The build-once/solve-many solver engine.
//!
//! The paper's cost model (§II-B) separates a one-time *analysis phase*
//! — level sets, in-degrees, data distribution — from the *solve
//! phase*, and its headline use case (triangular solves inside
//! preconditioned iterative solvers) calls the solve phase thousands of
//! times against the **same** factors. [`SolverEngine`] is that split
//! made explicit in the API:
//!
//! * [`SolverEngine::build`] runs every piece of preprocessing exactly
//!   once: triangular validation, level-set analysis, the
//!   [`ExecutionPlan`], the flat dependency adjacency
//!   ([`crate::exec::ExecAnalysis`]), cross-edge counts, the P2P
//!   feasibility check — and one *calibration simulation*.
//! * [`SolverEngine::solve`] reuses all of it — a warm solve performs
//!   **zero** level-set, plan or adjacency construction (asserted by
//!   tests against the per-thread construction counters in
//!   [`sparsemat::levels`], [`crate::plan`] and [`crate::exec`]).
//! * [`SolverEngine::solve_batch`] runs independent right-hand sides in
//!   parallel OS threads, so results stay bit-stable while wall-clock
//!   drops with the core count.
//!
//! ## Why warm solves are cheap: the timeline is value-independent
//!
//! The discrete-event machine advances on *structure* — column sizes,
//! ownership, dependency masks, the seeded jitter stream — never on the
//! numeric values flowing through the solve. Two solves of the same
//! engine therefore execute the **same event schedule** regardless of
//! the right-hand side. `build` exploits this: it simulates the full
//! timeline once (the calibration run), records the warp wake order and
//! the resulting report (timings, machine statistics, event counts),
//! and every subsequent [`SolverEngine::solve`] replays only the
//! `O(n + nnz)` numeric substitution along that order
//! ([`ExecAnalysis::replay`]). The floating-point operation sequence of
//! the replay is exactly the simulation's, so warm results are
//! bit-identical to one-shot [`crate::solve`] — at a small fraction of
//! the wall-clock. `BENCH_engine.json` (emitted by
//! `cargo bench -p sptrsv-bench --bench engine`) tracks the ratio.

use crate::exec::{self, ExecAnalysis, ExecConfig};
use crate::levelset;
use crate::plan::{ExecutionPlan, Partition};
use crate::reference;
use crate::report::{SolveReport, Timings};
use crate::solver::{MultiRhsReport, SolveError, SolveOptions, SolverKind};
use crate::verify;
use crate::Backend;
use desim::SimTime;
use mgpu_sim::{Machine, MachineConfig};
use sparsemat::{CscMatrix, LevelSets};

/// A reusable solver: analysis done once at build, arbitrarily many
/// solves afterwards.
///
/// The engine borrows the factor (`'m`), so the matrix outlives the
/// engine — the natural shape for a preconditioner loop where `L`/`U`
/// live for the whole Krylov iteration.
#[derive(Debug)]
pub struct SolverEngine<'m> {
    m: &'m CscMatrix,
    opts: SolveOptions,
    variant: Variant,
}

/// The per-kind prebuilt state. `template` is the calibration run's
/// report with an empty `x` — warm solves clone it and fill in the
/// replayed solution, which keeps every value-independent field
/// (timings, stats, event counts) bit-identical across solves.
#[derive(Debug)]
enum Variant {
    /// Serial host reference — no machine, no analysis.
    Serial,
    /// Every simulated solver (level-set and the whole sync-free
    /// family); boxed to keep the enum small next to `Serial`.
    Simulated(Box<Prepared>),
}

/// Prebuilt state of a simulated solver: flat column data plus the
/// solve order fixed by the calibration run — for level-set that order
/// is the flat `level_comps` array, for sync-free the recorded wake
/// order.
#[derive(Debug)]
struct Prepared {
    analysis: ExecAnalysis,
    order: Vec<u32>,
    template: SolveReport,
}

impl<'m> SolverEngine<'m> {
    /// Run the analysis phase for `m` under `opts` — once.
    ///
    /// Validates the factor, builds level sets / execution plan / flat
    /// dependency adjacency as the variant requires, performs the
    /// machine feasibility checks (NVSHMEM needs all-pairs P2P), and
    /// runs the calibration simulation that fixes the virtual timeline
    /// for all subsequent solves.
    pub fn build(
        m: &'m CscMatrix,
        machine_cfg: MachineConfig,
        opts: &SolveOptions,
    ) -> Result<SolverEngine<'m>, SolveError> {
        m.validate_triangular(opts.triangle)?;
        let label = opts.kind.label();
        let zeros = vec![0.0f64; m.n()];

        let variant = match opts.kind {
            SolverKind::Serial => Variant::Serial,
            SolverKind::LevelSet => {
                let cfg = single_gpu(&machine_cfg);
                let levels = LevelSets::analyze(m, opts.triangle);
                // flat column data (diagonals + update lists) for the
                // numeric replay — no distribution analysis needed
                let analysis = ExecAnalysis::columns_only(m, opts.triangle);
                let mut machine = Machine::new(cfg);
                let out =
                    levelset::run_with_levels(m, &zeros, &mut machine, opts.triangle, &levels);
                let template = SolveReport {
                    timings: Timings {
                        analysis: out.analysis_end,
                        solve: SimTime::from_ns(out.makespan - out.analysis_end),
                        total: out.makespan,
                    },
                    stats: machine.stats(),
                    events: 0,
                    gpus: 1,
                    kernels: out.levels,
                    cross_edges: 0,
                    fits_in_memory: machine.fits_in_memory(),
                    verified_rel_err: None,
                    label,
                    x: Vec::new(),
                };
                // level order (ascending level, ascending index within)
                // is exactly the order the level-set solver computes in
                let order = levels.level_comps().to_vec();
                Variant::Simulated(Box::new(Prepared { analysis, order, template }))
            }
            _ => {
                let (backend, partition, cfg) = match opts.kind {
                    SolverKind::SyncFree => {
                        (Backend::SingleGpu, Partition::Blocked, single_gpu(&machine_cfg))
                    }
                    SolverKind::Unified => {
                        (Backend::Unified, Partition::Blocked, machine_cfg.clone())
                    }
                    SolverKind::UnifiedTasks { per_gpu } => (
                        Backend::Unified,
                        Partition::Tasks { per_gpu },
                        machine_cfg.clone(),
                    ),
                    SolverKind::ShmemBlocked => (
                        Backend::Shmem { poll_caching: opts.poll_caching },
                        Partition::Blocked,
                        machine_cfg.clone(),
                    ),
                    SolverKind::ShmemNaive => {
                        (Backend::ShmemGup, Partition::Blocked, machine_cfg.clone())
                    }
                    SolverKind::ZeroCopy { per_gpu } => (
                        Backend::Shmem { poll_caching: opts.poll_caching },
                        Partition::Tasks { per_gpu },
                        machine_cfg.clone(),
                    ),
                    SolverKind::ZeroCopyTotal { total } => (
                        Backend::Shmem { poll_caching: opts.poll_caching },
                        Partition::TotalTasks { total },
                        machine_cfg.clone(),
                    ),
                    SolverKind::Serial | SolverKind::LevelSet => unreachable!("handled above"),
                };

                // feasibility: NVSHMEM variants need all-pairs P2P
                // (checked once here, not per solve)
                let mut machine = Machine::new(cfg);
                if matches!(backend, Backend::Shmem { .. } | Backend::ShmemGup)
                    && !machine.topology().fully_p2p()
                {
                    return Err(SolveError::NotP2p { gpus: machine.n_gpus() });
                }

                let plan = ExecutionPlan::build(m.n(), machine.n_gpus(), partition, opts.triangle);
                let cross_edges = plan.cross_gpu_edges(m, opts.triangle);
                let exec_cfg = ExecConfig {
                    backend,
                    triangle: opts.triangle,
                    gather_all_pes: opts.gather_all_pes,
                };
                let analysis = ExecAnalysis::build(m, &plan, &exec_cfg);

                // calibration: one full simulation fixes the timeline
                // and records the wake order for numeric replay
                let out = exec::run_prepared(&zeros, &plan, &analysis, &mut machine, &exec_cfg)
                    .map_err(SolveError::Exec)?;
                let template = SolveReport {
                    timings: Timings {
                        analysis: out.analysis_end,
                        solve: SimTime::from_ns(out.makespan - out.analysis_end),
                        total: out.makespan,
                    },
                    stats: machine.stats(),
                    events: out.events,
                    gpus: machine.n_gpus(),
                    kernels: plan.kernels.len(),
                    cross_edges,
                    fits_in_memory: machine.fits_in_memory(),
                    verified_rel_err: None,
                    label,
                    x: Vec::new(),
                };
                Variant::Simulated(Box::new(Prepared {
                    analysis,
                    order: out.solve_order,
                    template,
                }))
            }
        };

        Ok(SolverEngine { m, opts: opts.clone(), variant })
    }

    /// The factor this engine was built for.
    #[inline]
    pub fn matrix(&self) -> &CscMatrix {
        self.m
    }

    /// The options this engine was built with.
    #[inline]
    pub fn options(&self) -> &SolveOptions {
        &self.opts
    }

    /// Cross-GPU dependency edges under the engine's layout (0 for
    /// serial / level-set variants).
    pub fn cross_edges(&self) -> u64 {
        match &self.variant {
            Variant::Simulated(p) => p.template.cross_edges,
            Variant::Serial => 0,
        }
    }

    /// Solve `m · x = b` reusing the prebuilt analysis and the
    /// calibrated schedule.
    ///
    /// Warm solves replay only the numeric substitution — no level-set,
    /// plan or adjacency construction, no event loop — and return
    /// reports bit-identical to one-shot [`crate::solve`] with the same
    /// inputs.
    pub fn solve(&self, b: &[f64]) -> Result<SolveReport, SolveError> {
        if b.len() != self.m.n() {
            return Err(SolveError::DimensionMismatch { n: self.m.n(), rhs: b.len() });
        }
        let report = match &self.variant {
            Variant::Serial => {
                let x = reference::solve_serial(self.m, b, self.opts.triangle)?;
                return Ok(SolveReport {
                    x,
                    timings: Timings::default(),
                    stats: Default::default(),
                    events: 0,
                    gpus: 0,
                    kernels: 0,
                    cross_edges: 0,
                    fits_in_memory: true,
                    verified_rel_err: Some(0.0),
                    label: self.opts.kind.label(),
                });
            }
            Variant::Simulated(p) => {
                let mut report = p.template.clone();
                report.x = p.analysis.replay(&p.order, b);
                report
            }
        };
        self.finish(b, report)
    }

    /// Solve for several right-hand sides sequentially, charging the
    /// analysis phase once (§II-B amortization) — the engine-backed
    /// implementation of [`crate::solve_multi_rhs`].
    pub fn solve_multi_rhs(&self, bs: &[Vec<f64>]) -> Result<MultiRhsReport, SolveError> {
        let mut reports = Vec::with_capacity(bs.len());
        for b in bs {
            reports.push(self.solve(b)?);
        }
        Ok(amortized(reports))
    }

    /// Solve independent right-hand sides in parallel, one OS thread
    /// per chunk — results are bit-identical to sequential
    /// [`SolverEngine::solve`] calls and deterministic across runs and
    /// worker counts.
    ///
    /// Uses all available cores; see
    /// [`SolverEngine::solve_batch_with_threads`] to pin the width.
    pub fn solve_batch(&self, bs: &[Vec<f64>]) -> Result<MultiRhsReport, SolveError> {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        self.solve_batch_with_threads(bs, threads)
    }

    /// [`SolverEngine::solve_batch`] with an explicit worker count.
    pub fn solve_batch_with_threads(
        &self,
        bs: &[Vec<f64>],
        threads: usize,
    ) -> Result<MultiRhsReport, SolveError> {
        let threads = threads.clamp(1, bs.len().max(1));
        if threads == 1 || bs.len() <= 1 {
            return self.solve_multi_rhs(bs);
        }
        // contiguous chunks keep per-RHS order (and thus the amortized
        // totals) independent of the worker count
        let chunk = bs.len().div_ceil(threads);
        let results: Vec<Result<Vec<SolveReport>, SolveError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = bs
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(|b| self.solve(b)).collect()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("solver thread panicked")).collect()
        });
        let mut reports = Vec::with_capacity(bs.len());
        for r in results {
            reports.extend(r?);
        }
        Ok(amortized(reports))
    }

    fn finish(&self, b: &[f64], mut report: SolveReport) -> Result<SolveReport, SolveError> {
        if self.opts.verify {
            let reference = reference::solve_serial(self.m, b, self.opts.triangle)?;
            let err = verify::rel_inf_diff(&report.x, &reference);
            if err > verify::DEFAULT_TOL {
                return Err(SolveError::Verification { rel_err: err });
            }
            report.verified_rel_err = Some(err);
        }
        Ok(report)
    }
}

/// Assemble the amortized multi-RHS accounting: the analysis phase is
/// structure-only, so it is charged on the first solve and elided on
/// the rest.
fn amortized(reports: Vec<SolveReport>) -> MultiRhsReport {
    let mut total = 0u64;
    for (k, r) in reports.iter().enumerate() {
        total += if k == 0 {
            r.timings.total.as_ns()
        } else {
            r.timings.solve.as_ns()
        };
    }
    MultiRhsReport { reports, total: SimTime::from_ns(total) }
}

fn single_gpu(cfg: &MachineConfig) -> MachineConfig {
    let mut c = cfg.clone();
    c.gpus = 1;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen;

    fn small() -> (CscMatrix, Vec<f64>) {
        let m = gen::level_structured(&gen::LevelSpec::new(900, 18, 3600, 4));
        let (_, b) = verify::rhs_for(&m, 42);
        (m, b)
    }

    #[test]
    fn warm_solves_build_nothing() {
        let (m, b) = small();
        let opts = SolveOptions::default();
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let levels_before = sparsemat::levels::analyze_invocations();
        let plans_before = crate::plan::build_invocations();
        let exec_before = exec::analysis_builds();
        let r1 = engine.solve(&b).unwrap();
        let r2 = engine.solve(&b).unwrap();
        assert_eq!(sparsemat::levels::analyze_invocations(), levels_before);
        assert_eq!(crate::plan::build_invocations(), plans_before);
        assert_eq!(exec::analysis_builds(), exec_before);
        assert_eq!(r1.x, r2.x, "warm solves are bit-identical");
        assert_eq!(r1.timings.total, r2.timings.total);
    }

    #[test]
    fn engine_rejects_non_p2p_at_build_time() {
        let (m, _) = small();
        let opts = SolveOptions::default();
        let err = SolverEngine::build(&m, MachineConfig::dgx1(8), &opts).unwrap_err();
        assert!(matches!(err, SolveError::NotP2p { gpus: 8 }));
    }

    #[test]
    fn engine_rejects_bad_dimensions_per_solve() {
        let (m, _) = small();
        let engine =
            SolverEngine::build(&m, MachineConfig::dgx1(4), &SolveOptions::default()).unwrap();
        let err = engine.solve(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SolveError::DimensionMismatch { .. }));
    }

    #[test]
    fn batch_matches_sequential_and_is_deterministic() {
        let (m, _) = small();
        let bs: Vec<Vec<f64>> = (0..8)
            .map(|k| verify::rhs_for(&m, 500 + k).1)
            .collect();
        let opts = SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let seq = engine.solve_multi_rhs(&bs).unwrap();
        let par_a = engine.solve_batch_with_threads(&bs, 4).unwrap();
        let par_b = engine.solve_batch_with_threads(&bs, 3).unwrap();
        assert_eq!(seq.total, par_a.total);
        assert_eq!(par_a.total, par_b.total);
        for ((s, a), b) in seq.reports.iter().zip(&par_a.reports).zip(&par_b.reports) {
            assert_eq!(s.x, a.x);
            assert_eq!(a.x, b.x);
            assert_eq!(s.timings.total, a.timings.total);
        }
    }

    #[test]
    fn batch_amortizes_analysis() {
        let (m, _) = small();
        let bs: Vec<Vec<f64>> = (0..4).map(|k| verify::rhs_for(&m, 100 + k).1).collect();
        let opts = SolveOptions { kind: SolverKind::Unified, ..Default::default() };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let multi = engine.solve_batch(&bs).unwrap();
        assert_eq!(multi.reports.len(), 4);
        assert!(multi.total < multi.unamortized_total());
    }

    #[test]
    fn serial_and_levelset_variants_work_warm() {
        let (m, b) = small();
        for kind in [SolverKind::Serial, SolverKind::LevelSet] {
            let opts = SolveOptions { kind, ..Default::default() };
            let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
            let r1 = engine.solve(&b).unwrap();
            let r2 = engine.solve(&b).unwrap();
            assert_eq!(r1.x, r2.x);
            assert!(r1.verified_rel_err.unwrap() <= verify::DEFAULT_TOL);
        }
    }
}
