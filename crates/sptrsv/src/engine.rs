//! The build-once/solve-many solver engine.
//!
//! The paper's cost model (§II-B) separates a one-time *analysis phase*
//! — level sets, in-degrees, data distribution — from the *solve
//! phase*, and its headline use case (triangular solves inside
//! preconditioned iterative solvers) calls the solve phase thousands of
//! times against the **same** factors. [`SolverEngine`] is that split
//! made explicit in the API:
//!
//! * [`SolverEngine::build`] runs every piece of preprocessing exactly
//!   once: triangular validation, level-set analysis, the
//!   [`ExecutionPlan`], the flat dependency adjacency
//!   ([`crate::exec::ExecAnalysis`]), cross-edge counts, the P2P
//!   feasibility check — and one *calibration simulation*.
//! * [`SolverEngine::solve`] reuses all of it — a warm solve performs
//!   **zero** level-set, plan or adjacency construction (asserted by
//!   tests against the per-thread construction counters in
//!   [`sparsemat::levels`], [`crate::plan`] and [`crate::exec`]).
//! * [`SolverEngine::solve_batch`] runs independent right-hand sides in
//!   parallel OS threads, so results stay bit-stable while wall-clock
//!   drops with the core count.
//!
//! ## Why warm solves are cheap: the timeline is value-independent
//!
//! The discrete-event machine advances on *structure* — column sizes,
//! ownership, dependency masks, the seeded jitter stream — never on the
//! numeric values flowing through the solve. Two solves of the same
//! engine therefore execute the **same event schedule** regardless of
//! the right-hand side. `build` exploits this: it simulates the full
//! timeline once (the calibration run) and records the resulting
//! report (timings, machine statistics, event counts); every
//! subsequent [`SolverEngine::solve`] replays only the `O(n + nnz)`
//! numeric substitution along the engine's **canonical order** — the
//! level-major, owner-grouped schedule of
//! [`crate::exec::ShardedReplay`], a topological order every warm tier
//! shares. Warm results are bit-identical to one-shot [`crate::solve`]
//! — at a small fraction of the wall-clock. `BENCH_engine.json`
//! (emitted by `cargo bench -p sptrsv-bench --bench engine`) tracks
//! the ratio.
//!
//! ## The four-tier warm path
//!
//! Warm solves come in four shapes, keyed to the workload:
//!
//! 1. **Single solve** — [`SolverEngine::solve`] (convenience,
//!    allocates the report) or [`SolverEngine::solve_into`]
//!    (caller-provided [`SolveWorkspace`] and output buffer, **zero**
//!    heap allocation in steady state). Right choice when right-hand
//!    sides arrive one at a time with data dependencies between them —
//!    e.g. the preconditioner application inside a Krylov iteration.
//! 2. **Sharded solve** — [`SolverEngine::solve_sharded_into`] runs
//!    [`crate::exec::ShardedReplay`]: one right-hand side executed
//!    level-parallel across the persistent worker pool, each level a
//!    two-phase parallel region (solve owned components / apply
//!    owner-local updates) synchronized by a reusable barrier. This is
//!    the paper's parallel execution model — independent components
//!    concurrent, producer/owner-local updates — running real numerics
//!    on the host. Wins on *wide* factors (many components per level);
//!    deep narrow factors stay serial, and `solve`/`solve_into` pick
//!    the tier automatically from calibrated structure thresholds.
//! 3. **Fused panel** — [`SolverEngine::solve_panel_into`] runs
//!    [`ExecAnalysis::replay_panel`]: the flattened factor adjacency is
//!    streamed once per K-wide block of right-hand sides
//!    ([`crate::exec::PANEL_K`] lanes, interleaved layout, vectorized
//!    inner loop) instead of once per RHS. Replay is
//!    memory-bandwidth-bound, so this wins whenever ≥ 2 independent
//!    right-hand sides are available at once — block Krylov methods,
//!    multiple probing vectors, batched inference.
//! 4. **Pooled batch** — [`SolverEngine::solve_batch`] /
//!    [`SolverEngine::solve_batch_into`] split the batch into
//!    contiguous chunks and run fused panels on a **persistent worker
//!    pool** (lazily spawned, reused across calls — no per-call
//!    `thread::scope` spawns). Wins once the batch is large enough to
//!    occupy multiple cores (roughly `2 × PANEL_K` right-hand sides);
//!    chunking is deterministic, so results never depend on the worker
//!    count.
//!
//! All four tiers produce bit-identical solutions: every tier walks
//! the same canonical floating-point operation sequence per RHS — the
//! sharded tier by owner-computes construction (each row is solved,
//! and its partial sum accumulated in canonical source order, by
//! exactly one worker), the panel tiers because lanes never mix.
//!
//! ## The value-refresh lifecycle
//!
//! Time-stepping and quasi-Newton workloads refactor the **same
//! sparsity pattern** with new numeric values every few steps. Because
//! the analysis phase — level sets, the plan, the flat adjacency, the
//! calibration timeline — depends only on *structure*, none of it goes
//! stale when values change. [`SolverEngine::refresh_values`] exploits
//! that: the engine's prebuilt state is split into an immutable
//! **structure plan** (the canonical order, the calibration template,
//! the sharding heuristic) and a mutable **numeric state** (the
//! adjacency's value arrays, the sharded schedule's update values)
//! behind one `RwLock`, and a refresh rewrites only the numeric half —
//! zero symbolic work, zero allocation on a clean factor.
//!
//! The refresh contract:
//!
//! * **Validate first, mutate after.** The incoming matrix must carry
//!   the *identical* sparsity pattern (checked entry-for-entry; drift
//!   is a typed [`SolveError::StructureMismatch`]) and pass the same
//!   [`sparsemat::audit_factor`] sweep a cold build runs (non-finite
//!   values and zero pivots are typed [`SolveError::Matrix`] errors).
//!   Failures leave the engine exactly as it was — the strong
//!   exception guarantee, so a rejected refresh keeps serving the old
//!   values bit-identically.
//! * **Epoch atomicity.** Solve entry points hold the numeric read
//!   lock across the solve *and* its verification; a refresh takes the
//!   write lock, so it quiesces naturally at solve boundaries and
//!   every solve executes against exactly one value epoch — old or
//!   new, never a torn mix. [`SolverEngine::value_epoch`] counts
//!   committed refreshes.
//! * **Bit-identity with a cold rebuild.** A refreshed engine's four
//!   warm tiers produce bit-for-bit the solutions a freshly built
//!   engine on the new matrix would — same canonical order, same
//!   operation sequence, only the values swapped.
//!
//! ## Error contract
//!
//! Problems a *caller* can cause — wrong right-hand-side length, wrong
//! output-buffer length, wrong output count for a batch — surface as
//! typed [`SolveError`]s from every public entry point. Panics are
//! reserved for internal invariants (a broken engine, not a bad
//! argument).

use crate::exec::{self, ExecAnalysis, ExecConfig, ReplayWorkspace, ShardedReplay};
use crate::fault::{self, FaultSite};
use crate::levelset;
use crate::plan::{ExecutionPlan, Partition};
use crate::pool::{self, ScopedTask, WorkerPool};
use crate::report::{SolveReport, Timings};
use crate::schedule::{Schedule, ScheduleStats};
use crate::solver::{MultiRhsReport, SolveError, SolveOptions, SolverKind};
use crate::telemetry::{Hist, Site, SpanGuard, Stopwatch};
use crate::verify;
use crate::Backend;
use desim::SimTime;
use mgpu_sim::{Machine, MachineConfig};
use sparsemat::{CscMatrix, FactorAudit, FactorFingerprint, LevelSets, MatrixError, Triangle};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A reusable solver: analysis done once at build, arbitrarily many
/// solves afterwards.
///
/// The engine borrows the factor (`'m`), so the matrix outlives the
/// engine — the natural shape for a preconditioner loop where `L`/`U`
/// live for the whole Krylov iteration.
#[derive(Debug)]
pub struct SolverEngine<'m> {
    m: &'m CscMatrix,
    opts: SolveOptions,
    variant: Variant,
    /// The latest numeric/structural sweep over the factor's values
    /// (see [`sparsemat::audit_factor`]) — from the build, or from the
    /// most recent committed value refresh. Clean by construction on a
    /// live engine, since non-finite findings fail the build and any
    /// finding fails a refresh.
    audit: RwLock<FactorAudit>,
    /// Committed value refreshes (0 = the build's values). Solves
    /// observe exactly one epoch each — see the module docs.
    value_epoch: AtomicU64,
    /// Worker pool + recycled workspaces — engine-private by default,
    /// or shared with sibling engines via
    /// [`SolverEngine::build_shared`] (the L/U pair of a
    /// [`crate::krylov::PreconditionerEngine`] runs hundreds of
    /// interleaved forward/backward solves per Krylov solve on **one**
    /// pool and one workspace free-list).
    resources: Arc<EngineResources>,
}

/// The runtime resources behind an engine's warm tiers: the persistent
/// worker pool (spawned lazily on the first parallel solve) and the
/// free-list of recycled [`SolveWorkspace`]s that keeps steady-state
/// batched solves allocation-free.
///
/// Every engine owns an `Arc` of one of these. [`SolverEngine::build`]
/// creates a private instance; [`SolverEngine::build_shared`] accepts
/// an existing one, so several engines over the same workload — e.g.
/// the forward-L and backward-U engines of an ILU(0) preconditioner —
/// share threads and scratch instead of doubling both.
#[derive(Debug, Default)]
pub struct EngineResources {
    pool: OnceLock<WorkerPool>,
    workspaces: RecyclePool<SolveWorkspace>,
}

impl EngineResources {
    /// Fresh resources: no threads spawned, no workspaces cached —
    /// both materialize lazily on first use.
    pub fn new() -> EngineResources {
        EngineResources::default()
    }

    fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(WorkerPool::new)
    }

    /// Times the worker pool came up short of a requested thread count
    /// (spawn failure, real or injected) — every shortfall degraded a
    /// sharded solve to the bit-identical serial replay. Zero if the
    /// pool was never spawned.
    pub fn spawn_shortfalls(&self) -> u64 {
        self.pool.get().map_or(0, WorkerPool::spawn_shortfalls)
    }

    pub(crate) fn take_workspace(&self) -> SolveWorkspace {
        self.workspaces.take()
    }

    pub(crate) fn put_workspace(&self, ws: SolveWorkspace) {
        self.workspaces.put(ws);
    }
}

/// A poison-recovering free-list of recycled scratch objects — the
/// pattern behind both the engines' [`SolveWorkspace`] pool and the
/// preconditioner's apply-workspace pool. The list only holds scratch
/// whose buffers are re-`resize`d by every consumer, so the data is
/// valid wherever a panicking holder stopped — a panicked pool task
/// must not permanently brick later warm solves.
#[derive(Debug, Default)]
pub(crate) struct RecyclePool<T>(Mutex<Vec<T>>);

impl<T: Default> RecyclePool<T> {
    /// Pop a recycled item, or a fresh default on first use.
    pub(crate) fn take(&self) -> T {
        self.lock().pop().unwrap_or_default()
    }

    /// Return an item to the free-list.
    pub(crate) fn put(&self, item: T) {
        self.lock().push(item);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<T>> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The per-kind prebuilt state, split along the refresh boundary: what
/// depends only on *structure* is immutable for the engine's lifetime;
/// what depends on *values* sits behind a `RwLock` so
/// [`SolverEngine::refresh_values`] can rewrite it in place.
#[derive(Debug)]
enum Variant {
    /// Serial host solver — no machine, no plan; solves by natural-order
    /// replay of the flat column adjacency
    /// ([`ExecAnalysis::columns_only`]), which is bit-identical to the
    /// classic CSC substitution and gives the serial tier the same
    /// refreshable numeric state as every other tier.
    Serial(Box<RwLock<ExecAnalysis>>),
    /// Every simulated solver (level-set and the whole sync-free
    /// family); boxed to keep the enum small.
    Simulated(Box<Prepared>),
}

/// Prebuilt state of a simulated solver, split for in-place value
/// refresh: the immutable [`StructurePlan`] next to the
/// [`NumericState`] a refresh rewrites under the lock.
#[derive(Debug)]
struct Prepared {
    structure: StructurePlan,
    /// Solves take the read lock for their whole duration (solve +
    /// verification); a refresh takes the write lock — which is the
    /// quiesce point that makes every solve observe exactly one value
    /// epoch.
    numeric: RwLock<NumericState>,
}

/// Everything a simulated solver prebuilds that depends only on the
/// sparsity structure — immutable across value refreshes.
///
/// `schedule` is the warm-path **Schedule IR** ([`Schedule`]): the
/// levels → chains → shards decomposition built exactly once here and
/// shared (`Arc`) with the sharded executor. `order` is that
/// schedule's canonical level-major, owner-grouped order — the single
/// operation sequence every warm tier replays, which is what keeps
/// serial, sharded, panel and batched solves bit-identical to one
/// another. A value refresh rewrites only [`NumericState`]; the
/// schedule is structure-only and stays untouched by construction.
///
/// `template` — the calibration run's report with an empty `x`, held
/// behind `Arc` — lives here *by design*: the discrete-event timeline
/// advances on structure alone (column sizes, ownership, the seeded
/// jitter stream), never on numeric values, so the calibration
/// survives a value refresh untouched and a refreshed engine reports
/// the same virtual timings a cold rebuild on the new values would.
#[derive(Debug)]
struct StructurePlan {
    order: Arc<[u32]>,
    /// Worker count the `solve`/`solve_into` auto-heuristic uses for
    /// the sharded tier ([`Schedule::auto_workers`] evaluated against
    /// this host); `1` means the factor is too narrow/deep for level
    /// parallelism — even after chain fusion — and serial replay stays
    /// the default.
    auto_workers: usize,
    /// The shared Schedule IR (also held by the sharded executor).
    schedule: Arc<Schedule>,
    template: Arc<SolveReport>,
}

/// The value-dependent half of a simulated solver's prebuilt state:
/// the flat adjacency (whose `dep_vals`/`diag` arrays carry matrix
/// values) and the sharded schedule (whose packed update values mirror
/// them). A value refresh rewrites both in place — the topology fields
/// inside are never touched after build.
#[derive(Debug)]
pub(crate) struct NumericState {
    analysis: ExecAnalysis,
    sharded: ShardedReplay,
}

/// Read access to an engine's flat dependency adjacency, whichever
/// variant owns it. This is a lock guard: the borrowed analysis is
/// pinned to one value epoch for the guard's lifetime, and a value
/// refresh waits until the guard drops — hold it across a composed
/// solve (the Krylov preconditioner does) and the whole application
/// runs against consistent values.
#[derive(Debug)]
pub(crate) enum AnalysisGuard<'a> {
    Direct(RwLockReadGuard<'a, ExecAnalysis>),
    Prepared(RwLockReadGuard<'a, NumericState>),
}

impl std::ops::Deref for AnalysisGuard<'_> {
    type Target = ExecAnalysis;
    fn deref(&self) -> &ExecAnalysis {
        match self {
            AnalysisGuard::Direct(g) => g,
            AnalysisGuard::Prepared(g) => &g.analysis,
        }
    }
}

/// Write access to an engine's numeric state, whichever variant owns
/// it — handed out by [`SolverEngine::lock_numeric_mut`] so a
/// multi-engine refresh can hold every write lock across a pair-atomic
/// commit.
#[derive(Debug)]
pub(crate) enum NumericWriteGuard<'a> {
    Direct(RwLockWriteGuard<'a, ExecAnalysis>),
    Prepared(RwLockWriteGuard<'a, NumericState>),
}

/// Read-lock with poison recovery: the numeric state is only written
/// by the infallible commit phase of a refresh (every failure happens
/// before the write lock is taken), so a poisoned lock means a reader
/// unwound mid-solve — the data itself is intact.
fn rlock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock with the same poison-recovery rationale as [`rlock`].
fn wlock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// The receipt of a committed [`SolverEngine::refresh_values`]: what
/// changed, which value epoch is now live, and the audit evidence the
/// new values passed the same sweep a cold build runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshReport {
    /// System dimension (unchanged by construction — structure is
    /// immutable).
    pub n: usize,
    /// Nonzeros rewritten in place.
    pub nnz: usize,
    /// The value epoch now being served (1 after the first refresh).
    pub value_epoch: u64,
    /// The [`sparsemat::audit_factor`] sweep over the new values —
    /// clean by construction on a committed refresh, kept as the
    /// evidence trail.
    pub audit: FactorAudit,
}

impl fmt::Display for RefreshReport {
    /// One-liner for example/harness output, e.g.
    /// `refresh: n=15000, nnz=44997 rewritten in place, value epoch 2,
    /// audit clean`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refresh: n={}, nnz={} rewritten in place, value epoch {}, audit {}",
            self.n,
            self.nnz,
            self.value_epoch,
            if self.audit.is_clean() {
                "clean".to_string()
            } else {
                format!("{} findings", self.audit.finding_count)
            }
        )
    }
}

/// Reusable scratch for the allocation-free warm-solve paths
/// ([`SolverEngine::solve_into`], [`SolverEngine::solve_panel_into`]).
/// Buffers grow on first use and are retained, so a workspace reused
/// across solves of the same engine allocates nothing after warm-up.
#[derive(Debug, Default)]
pub struct SolveWorkspace {
    /// Interleaved panel buffers for the fused multi-RHS replay.
    panel: ReplayWorkspace,
    /// `left_sum` scratch for scalar replay, serial substitution and
    /// the verification reference.
    scratch: Vec<f64>,
    /// Reference solution buffer for verification.
    ref_x: Vec<f64>,
}

impl SolveWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> SolveWorkspace {
        SolveWorkspace::default()
    }
}

impl<'m> SolverEngine<'m> {
    /// Run the analysis phase for `m` under `opts` — once.
    ///
    /// Validates the factor, builds level sets / execution plan / flat
    /// dependency adjacency as the variant requires, performs the
    /// machine feasibility checks (NVSHMEM needs all-pairs P2P), and
    /// runs the calibration simulation that fixes the virtual timeline
    /// for all subsequent solves.
    pub fn build(
        m: &'m CscMatrix,
        machine_cfg: MachineConfig,
        opts: &SolveOptions,
    ) -> Result<SolverEngine<'m>, SolveError> {
        SolverEngine::build_shared(m, machine_cfg, opts, Arc::new(EngineResources::new()))
    }

    /// [`SolverEngine::build`] with caller-provided [`EngineResources`]
    /// — the composition hook for multi-engine workloads: every engine
    /// handed the same `Arc` shares one worker pool and one workspace
    /// free-list. The `krylov` preconditioner builds its L and U
    /// engines this way so interleaved forward/backward solves recycle
    /// each other's scratch and never spawn a second thread pool.
    pub fn build_shared(
        m: &'m CscMatrix,
        machine_cfg: MachineConfig,
        opts: &SolveOptions,
        resources: Arc<EngineResources>,
    ) -> Result<SolverEngine<'m>, SolveError> {
        let build_sw = Stopwatch::start();
        m.validate_triangular(opts.triangle)?;
        // numeric guardrail, paid once where it is amortized: a NaN or
        // infinity in the factor would poison thousands of warm solves
        // bit-identically, so it fails the build instead. Zero
        // diagonals and duplicates were already rejected above; the
        // audit is kept on the engine as evidence the sweep ran.
        let audit = sparsemat::audit_factor(m);
        if let Some(e @ MatrixError::NonFiniteValue { .. }) = audit.first_error() {
            return Err(SolveError::Matrix(e));
        }
        let label: Arc<str> = opts.kind.label().into();
        let zeros = vec![0.0f64; m.n()];

        let variant = match opts.kind {
            // flat column data only — replayed in natural substitution
            // order, so the serial tier shares the refreshable numeric
            // representation without any level or plan analysis
            SolverKind::Serial => {
                let _g = SpanGuard::enter(Site::BuildAnalyze);
                Variant::Serial(Box::new(RwLock::new(ExecAnalysis::columns_only(m, opts.triangle))))
            }
            SolverKind::LevelSet => {
                let cfg = single_gpu(&machine_cfg);
                let (levels, analysis) = {
                    let _g = SpanGuard::enter(Site::BuildAnalyze);
                    // flat column data (diagonals + update lists) for
                    // the numeric replay — no distribution analysis
                    (
                        LevelSets::analyze(m, opts.triangle),
                        ExecAnalysis::columns_only(m, opts.triangle),
                    )
                };
                let mut machine = Machine::new(cfg);
                let out = {
                    let _g = SpanGuard::enter(Site::BuildCalibrate);
                    levelset::run_with_levels(m, &zeros, &mut machine, opts.triangle, &levels)
                };
                // level order (ascending level, ascending index within)
                // is exactly the order the level-set solver computes
                // in; the schedule owns the canonical order, the
                // sharded executor and the structure plan share it
                let sched_span = SpanGuard::enter(Site::BuildSchedule);
                let schedule = Arc::new(Schedule::build(&levels, None, opts.schedule_tuning()));
                let template = SolveReport {
                    timings: Timings {
                        analysis: out.analysis_end,
                        solve: SimTime::from_ns(out.makespan - out.analysis_end),
                        total: out.makespan,
                    },
                    stats: machine.stats(),
                    events: 0,
                    gpus: 1,
                    kernels: out.levels,
                    cross_edges: 0,
                    fits_in_memory: machine.fits_in_memory(),
                    verified_rel_err: None,
                    schedule: Some(schedule.stats()),
                    telemetry: Default::default(),
                    label,
                    x: Vec::new(),
                };
                let sharded = ShardedReplay::build(&analysis, &levels, &schedule);
                drop(sched_span);
                let order = schedule.order_shared();
                let auto_workers = schedule.auto_workers(hardware_threads());
                Variant::Simulated(Box::new(Prepared {
                    structure: StructurePlan {
                        order,
                        auto_workers,
                        schedule,
                        template: Arc::new(template),
                    },
                    numeric: RwLock::new(NumericState { analysis, sharded }),
                }))
            }
            _ => {
                let (backend, partition, cfg) = match opts.kind {
                    SolverKind::SyncFree => {
                        (Backend::SingleGpu, Partition::Blocked, single_gpu(&machine_cfg))
                    }
                    SolverKind::Unified => {
                        (Backend::Unified, Partition::Blocked, machine_cfg.clone())
                    }
                    SolverKind::UnifiedTasks { per_gpu } => {
                        (Backend::Unified, Partition::Tasks { per_gpu }, machine_cfg.clone())
                    }
                    SolverKind::ShmemBlocked => (
                        Backend::Shmem { poll_caching: opts.poll_caching },
                        Partition::Blocked,
                        machine_cfg.clone(),
                    ),
                    SolverKind::ShmemNaive => {
                        (Backend::ShmemGup, Partition::Blocked, machine_cfg.clone())
                    }
                    SolverKind::ZeroCopy { per_gpu } => (
                        Backend::Shmem { poll_caching: opts.poll_caching },
                        Partition::Tasks { per_gpu },
                        machine_cfg.clone(),
                    ),
                    SolverKind::ZeroCopyTotal { total } => (
                        Backend::Shmem { poll_caching: opts.poll_caching },
                        Partition::TotalTasks { total },
                        machine_cfg.clone(),
                    ),
                    SolverKind::Serial | SolverKind::LevelSet => unreachable!("handled above"),
                };

                // feasibility: NVSHMEM variants need all-pairs P2P
                // (checked once here, not per solve)
                let mut machine = Machine::new(cfg);
                if matches!(backend, Backend::Shmem { .. } | Backend::ShmemGup)
                    && !machine.topology().fully_p2p()
                {
                    return Err(SolveError::NotP2p { gpus: machine.n_gpus() });
                }

                let (plan, cross_edges) = {
                    let _g = SpanGuard::enter(Site::BuildPlan);
                    let plan =
                        ExecutionPlan::build(m.n(), machine.n_gpus(), partition, opts.triangle);
                    let cross_edges = plan.cross_gpu_edges(m, opts.triangle);
                    (plan, cross_edges)
                };
                let exec_cfg = ExecConfig {
                    backend,
                    triangle: opts.triangle,
                    gather_all_pes: opts.gather_all_pes,
                };
                let analysis = {
                    let _g = SpanGuard::enter(Site::BuildAnalyze);
                    ExecAnalysis::build(m, &plan, &exec_cfg)
                };

                // calibration: one full simulation fixes the timeline
                // and records the wake order for numeric replay
                let out = {
                    let _g = SpanGuard::enter(Site::BuildCalibrate);
                    exec::run_prepared(&zeros, &plan, &analysis, &mut machine, &exec_cfg)
                        .map_err(SolveError::Exec)?
                };
                // the canonical warm order is the level-major,
                // owner-grouped schedule order (not the recorded wake
                // order): one operation sequence serves every warm
                // tier, serial and parallel alike
                let sched_span = SpanGuard::enter(Site::BuildSchedule);
                let levels = LevelSets::analyze(m, opts.triangle);
                let schedule =
                    Arc::new(Schedule::build(&levels, Some(&plan.owner), opts.schedule_tuning()));
                let template = SolveReport {
                    timings: Timings {
                        analysis: out.analysis_end,
                        solve: SimTime::from_ns(out.makespan - out.analysis_end),
                        total: out.makespan,
                    },
                    stats: machine.stats(),
                    events: out.events,
                    gpus: machine.n_gpus(),
                    kernels: plan.kernels.len(),
                    cross_edges,
                    fits_in_memory: machine.fits_in_memory(),
                    verified_rel_err: None,
                    schedule: Some(schedule.stats()),
                    telemetry: Default::default(),
                    label,
                    x: Vec::new(),
                };
                let sharded = ShardedReplay::build(&analysis, &levels, &schedule);
                drop(sched_span);
                let order = schedule.order_shared();
                let auto_workers = schedule.auto_workers(hardware_threads());
                Variant::Simulated(Box::new(Prepared {
                    structure: StructurePlan {
                        order,
                        auto_workers,
                        schedule,
                        template: Arc::new(template),
                    },
                    numeric: RwLock::new(NumericState { analysis, sharded }),
                }))
            }
        };

        build_sw.stop(Hist::BuildNs);
        Ok(SolverEngine {
            m,
            opts: opts.clone(),
            variant,
            audit: RwLock::new(audit),
            value_epoch: AtomicU64::new(0),
            resources,
        })
    }

    /// The latest [`FactorAudit`] over this engine's values — from the
    /// build, or from the most recent committed
    /// [`SolverEngine::refresh_values`]. On a live engine it never
    /// carries non-finite findings (those fail the build with a typed
    /// error, and *any* finding fails a refresh), so this is the
    /// evidence trail that the sweep ran, plus whatever benign findings
    /// a caller may want to log.
    pub fn factor_audit(&self) -> FactorAudit {
        rlock(&self.audit).clone()
    }

    /// The value epoch currently being served: 0 until the first
    /// committed [`SolverEngine::refresh_values`], incremented by one
    /// per committed refresh. Cheap (one atomic load) — the number a
    /// cache or client pairs with
    /// [`sparsemat::FactorFingerprint::with_epoch`] to identify the
    /// numerics without hashing them.
    pub fn value_epoch(&self) -> u64 {
        self.value_epoch.load(Ordering::Acquire)
    }

    /// The factor this engine was **built** for. The structure is
    /// authoritative for the engine's lifetime; the *values* are those
    /// of the build and are superseded once
    /// [`SolverEngine::refresh_values`] commits (the engine borrows the
    /// matrix immutably and never writes it back).
    #[inline]
    pub fn matrix(&self) -> &CscMatrix {
        self.m
    }

    /// The options this engine was built with.
    #[inline]
    pub fn options(&self) -> &SolveOptions {
        &self.opts
    }

    /// Host bytes this engine holds beyond the matrix it borrows:
    /// analysis arrays, the Schedule IR (canonical order, shard
    /// segments, chain partition — counted once, by its owner of
    /// record), the sharded executor's numeric bucket arrays, plus one
    /// warm [`SolveWorkspace`] at this dimension — the per-engine
    /// charge a byte-bounded factor cache accounts (the cache adds the
    /// matrix's own bytes separately, since the cache is what keeps
    /// the matrix alive).
    pub fn footprint_bytes(&self) -> u64 {
        let n = self.m.n() as u64;
        // one fully-grown workspace: three n×PANEL_K panel buffers
        // plus the two n-length scalar scratch vectors
        let workspace = n * 8 * (3 * crate::exec::PANEL_K as u64 + 2);
        let prepared = match &self.variant {
            Variant::Simulated(p) => {
                let num = rlock(&p.numeric);
                p.structure.schedule.host_bytes()
                    + num.analysis.host_bytes()
                    + num.sharded.host_bytes()
            }
            Variant::Serial(a) => rlock(a).host_bytes(),
        };
        prepared + workspace
    }

    /// Cross-GPU dependency edges under the engine's layout (0 for
    /// serial / level-set variants).
    pub fn cross_edges(&self) -> u64 {
        match &self.variant {
            Variant::Simulated(p) => p.structure.template.cross_edges,
            Variant::Serial(_) => 0,
        }
    }

    /// Solve `m · x = b` reusing the prebuilt analysis and the
    /// calibrated schedule.
    ///
    /// Warm solves replay only the numeric substitution — no level-set,
    /// plan or adjacency construction, no event loop — and return
    /// reports bit-identical to one-shot [`crate::solve`] with the same
    /// inputs.
    pub fn solve(&self, b: &[f64]) -> Result<SolveReport, SolveError> {
        if b.len() != self.m.n() {
            return Err(SolveError::DimensionMismatch {
                n: self.m.n(),
                rhs: b.len(),
                index: None,
                buffer: "rhs",
            });
        }
        // one read guard per solve: the whole call — substitution and
        // verification — runs against a single value epoch
        match &self.variant {
            Variant::Serial(a) => {
                let _g = SpanGuard::enter(Site::SolveSerial);
                let sw = Stopwatch::start();
                let a = rlock(a);
                let n = self.m.n();
                let mut x = vec![0.0f64; n];
                let mut left_sum = vec![0.0f64; n];
                a.replay_natural_into(self.ascending(), b, &mut left_sum, &mut x);
                sw.stop(Hist::SolveSerialNs);
                // the natural-order replay *is* the serial reference,
                // so verification is exact by construction. The
                // degenerate single-chain stats keep `schedule`
                // populated for every variant.
                Ok(SolveReport {
                    x,
                    timings: Timings::default(),
                    stats: Default::default(),
                    events: 0,
                    gpus: 0,
                    kernels: 0,
                    cross_edges: 0,
                    fits_in_memory: true,
                    verified_rel_err: Some(0.0),
                    schedule: Some(ScheduleStats::serial(n)),
                    telemetry: Default::default(),
                    label: self.opts.kind.label().into(),
                })
            }
            Variant::Simulated(p) => {
                let num = rlock(&p.numeric);
                let mut report = (*p.structure.template).clone();
                let workers = self.effective_shard_workers(p.structure.auto_workers);
                if workers > 1 {
                    let _g = SpanGuard::enter(Site::SolveSharded);
                    let sw = Stopwatch::start();
                    let mut x = vec![0.0f64; self.m.n()];
                    let mut left_sum = vec![0.0f64; self.m.n()];
                    num.sharded.replay_into(
                        &num.analysis,
                        b,
                        &mut left_sum,
                        &mut x,
                        self.pool(),
                        workers,
                    );
                    sw.stop(Hist::SolveShardedNs);
                    report.x = x;
                } else {
                    let _g = SpanGuard::enter(Site::SolveSerial);
                    let sw = Stopwatch::start();
                    report.x = num.analysis.replay(&p.structure.order, b);
                    sw.stop(Hist::SolveSerialNs);
                }
                if self.opts.verify {
                    let mut scratch = vec![0.0f64; self.m.n()];
                    let mut ref_x = vec![0.0f64; self.m.n()];
                    num.analysis.replay_natural_into(self.ascending(), b, &mut scratch, &mut ref_x);
                    let err = verify::rel_inf_diff(&report.x, &ref_x);
                    if err > verify::DEFAULT_TOL {
                        return Err(SolveError::Verification { rel_err: err });
                    }
                    report.verified_rel_err = Some(err);
                }
                Ok(report)
            }
        }
    }

    /// Allocation-free warm solve: replay the numeric substitution into
    /// the caller's output buffer, using (and growing, once) the
    /// caller's workspace.
    ///
    /// Steady state — after the workspace buffers have grown to the
    /// engine's dimension — this performs **zero** heap allocation,
    /// including under `opts.verify` (the serial reference runs in
    /// workspace scratch). Results are bit-identical to
    /// [`SolverEngine::solve`].
    pub fn solve_into(
        &self,
        b: &[f64],
        out: &mut [f64],
        ws: &mut SolveWorkspace,
    ) -> Result<(), SolveError> {
        let n = self.m.n();
        if b.len() != n {
            return Err(SolveError::DimensionMismatch {
                n,
                rhs: b.len(),
                index: None,
                buffer: "rhs",
            });
        }
        if out.len() != n {
            return Err(SolveError::OutputLength { n, out: out.len(), buffer: "out" });
        }
        ws.scratch.resize(n, 0.0);
        match &self.variant {
            Variant::Serial(a) => {
                let _g = SpanGuard::enter(Site::SolveSerial);
                let sw = Stopwatch::start();
                let a = rlock(a);
                a.replay_natural_into(self.ascending(), b, &mut ws.scratch, out);
                sw.stop(Hist::SolveSerialNs);
                self.verify_into(&a, b, out, ws)
            }
            Variant::Simulated(p) => {
                let num = rlock(&p.numeric);
                let workers = self.effective_shard_workers(p.structure.auto_workers);
                if workers > 1 {
                    let _g = SpanGuard::enter(Site::SolveSharded);
                    let sw = Stopwatch::start();
                    num.sharded.replay_into(
                        &num.analysis,
                        b,
                        &mut ws.scratch,
                        out,
                        self.pool(),
                        workers,
                    );
                    sw.stop(Hist::SolveShardedNs);
                } else {
                    let _g = SpanGuard::enter(Site::SolveSerial);
                    let sw = Stopwatch::start();
                    num.analysis.replay_into(&p.structure.order, b, &mut ws.scratch, out);
                    sw.stop(Hist::SolveSerialNs);
                }
                self.verify_into(&num.analysis, b, out, ws)
            }
        }
    }

    /// Level-parallel warm solve (tier 2): one right-hand side executed
    /// across `workers` threads of the persistent pool by
    /// [`crate::exec::ShardedReplay`] — each level a two-phase parallel
    /// region (solve owned components, barrier, apply owner-local
    /// updates) under the owner-computes discipline.
    ///
    /// Results are **bit-identical** to [`SolverEngine::solve_into`]
    /// for every worker count: each row's solve and its partial-sum
    /// accumulation (in canonical source order) belong to exactly one
    /// worker. Steady state this allocates nothing — the level barrier
    /// is stack-allocated and the region descriptor lives in the pool.
    ///
    /// `workers` is clamped to `[1, crate::exec::SHARD_COUNT]`; one
    /// worker, a call from inside a pool task (where a nested parallel
    /// region cannot be mounted), or a pool whose region slot is held
    /// by a concurrent sharded solve all degrade to the serial replay
    /// — never a block, never different bits. The serial engine
    /// variant ignores `workers`. Prefer
    /// [`SolverEngine::solve_into`] unless you want to pin the width:
    /// its heuristic already picks this tier when the factor is wide
    /// enough to pay for the per-level barriers.
    pub fn solve_sharded_into(
        &self,
        b: &[f64],
        out: &mut [f64],
        ws: &mut SolveWorkspace,
        workers: usize,
    ) -> Result<(), SolveError> {
        let n = self.m.n();
        if b.len() != n {
            return Err(SolveError::DimensionMismatch {
                n,
                rhs: b.len(),
                index: None,
                buffer: "rhs",
            });
        }
        if out.len() != n {
            return Err(SolveError::OutputLength { n, out: out.len(), buffer: "out" });
        }
        ws.scratch.resize(n, 0.0);
        match &self.variant {
            Variant::Serial(a) => {
                let _g = SpanGuard::enter(Site::SolveSerial);
                let sw = Stopwatch::start();
                let a = rlock(a);
                a.replay_natural_into(self.ascending(), b, &mut ws.scratch, out);
                sw.stop(Hist::SolveSerialNs);
                self.verify_into(&a, b, out, ws)
            }
            Variant::Simulated(p) => {
                let _g = SpanGuard::enter(Site::SolveSharded);
                let sw = Stopwatch::start();
                let num = rlock(&p.numeric);
                let workers = self.effective_shard_workers(workers);
                num.sharded.replay_into(
                    &num.analysis,
                    b,
                    &mut ws.scratch,
                    out,
                    self.pool(),
                    workers,
                );
                sw.stop(Hist::SolveShardedNs);
                self.verify_into(&num.analysis, b, out, ws)
            }
        }
    }

    /// Fused multi-RHS warm solve (tier 2): the factor adjacency is
    /// streamed once per [`crate::exec::PANEL_K`]-wide block of
    /// right-hand sides instead of once per RHS — single-threaded, in
    /// the caller's workspace, zero heap allocation in steady state
    /// (each `outs` vector is resized to `n` on first use and reused
    /// afterwards).
    ///
    /// Every solution is bit-identical to [`SolverEngine::solve`] on
    /// the same right-hand side.
    ///
    /// # Errors
    /// A wrong-length right-hand side, or an `outs` that does not hold
    /// exactly one vector per right-hand side, is a typed error — not
    /// a panic.
    pub fn solve_panel_into(
        &self,
        bs: &[Vec<f64>],
        outs: &mut [Vec<f64>],
        ws: &mut SolveWorkspace,
    ) -> Result<(), SolveError> {
        self.validate_batch_dims(bs)?;
        if outs.len() != bs.len() {
            return Err(SolveError::OutputLength { n: bs.len(), out: outs.len(), buffer: "outs" });
        }
        self.panel_into_prevalidated(bs, outs, ws)
    }

    /// The fused-panel body with the per-lane validation already done —
    /// the entry point for callers that validated every right-hand side
    /// at admission time (the [`crate::serve`] dispatcher checks each
    /// request's length once in `submit`, so a coalesced panel must not
    /// re-pay a validation sweep per dispatched lane).
    ///
    /// Dimension discipline is the caller's obligation here
    /// (`debug_assert`ed); results and verification behavior are
    /// exactly [`SolverEngine::solve_panel_into`]'s.
    pub(crate) fn panel_into_prevalidated(
        &self,
        bs: &[Vec<f64>],
        outs: &mut [Vec<f64>],
        ws: &mut SolveWorkspace,
    ) -> Result<(), SolveError> {
        let n = self.m.n();
        debug_assert!(bs.iter().all(|b| b.len() == n), "prevalidated rhs length");
        debug_assert_eq!(bs.len(), outs.len(), "prevalidated output count");
        for out in outs.iter_mut() {
            out.resize(n, 0.0);
        }
        let _g = SpanGuard::enter(Site::SolvePanel);
        let sw = Stopwatch::start();
        match &self.variant {
            Variant::Serial(a) => {
                let a = rlock(a);
                ws.scratch.resize(n, 0.0);
                for (b, out) in bs.iter().zip(outs.iter_mut()) {
                    a.replay_natural_into(self.ascending(), b, &mut ws.scratch, out);
                }
                if self.opts.verify {
                    for (b, out) in bs.iter().zip(outs.iter()) {
                        self.verify_into(&a, b, out, ws)?;
                    }
                }
            }
            Variant::Simulated(p) => {
                let num = rlock(&p.numeric);
                num.analysis.replay_panel(&p.structure.order, bs, &mut ws.panel, outs);
                if self.opts.verify {
                    for (b, out) in bs.iter().zip(outs.iter()) {
                        self.verify_into(&num.analysis, b, out, ws)?;
                    }
                }
            }
        }
        sw.stop(Hist::SolvePanelNs);
        Ok(())
    }

    /// Solve for several right-hand sides sequentially, charging the
    /// analysis phase once (§II-B amortization) — the engine-backed
    /// implementation of [`crate::solve_multi_rhs`].
    pub fn solve_multi_rhs(&self, bs: &[Vec<f64>]) -> Result<MultiRhsReport, SolveError> {
        self.validate_batch_dims(bs)?;
        let mut reports = Vec::with_capacity(bs.len());
        for b in bs {
            reports.push(self.solve(b)?);
        }
        Ok(amortized(reports))
    }

    /// Solve independent right-hand sides in parallel on the engine's
    /// persistent worker pool — results are bit-identical to sequential
    /// [`SolverEngine::solve`] calls and deterministic across runs and
    /// worker counts.
    ///
    /// Uses all available cores; see
    /// [`SolverEngine::solve_batch_with_threads`] to pin the width.
    pub fn solve_batch(&self, bs: &[Vec<f64>]) -> Result<MultiRhsReport, SolveError> {
        self.solve_batch_with_threads(bs, hardware_threads())
    }

    /// [`SolverEngine::solve_batch`] with an explicit worker count.
    ///
    /// Workers come from a pool spawned lazily on the first batched
    /// call and reused afterwards — steady-state batches pay no thread
    /// spawns. Every right-hand side is dimension-checked **before**
    /// any worker runs, so a bad vector fails fast instead of after
    /// earlier chunks have already solved.
    pub fn solve_batch_with_threads(
        &self,
        bs: &[Vec<f64>],
        threads: usize,
    ) -> Result<MultiRhsReport, SolveError> {
        self.validate_batch_dims(bs)?;
        let threads = threads.clamp(1, bs.len().max(1));
        if threads == 1 || bs.len() <= 1 {
            return self.solve_multi_rhs(bs);
        }
        // contiguous chunks keep per-RHS order (and thus the amortized
        // totals) independent of the worker count
        let chunk = bs.len().div_ceil(threads);
        let n_chunks = bs.len().div_ceil(chunk);
        let mut results: Vec<Option<Result<Vec<SolveReport>, SolveError>>> =
            (0..n_chunks).map(|_| None).collect();
        let pool = self.pool();
        // chunking is keyed to the *requested* count (so results and
        // totals are reproducible for a given `threads`), but the pool
        // never grows beyond the hardware parallelism — excess chunks
        // just queue, and an absurd request cannot leak idle OS
        // threads for the engine's lifetime
        pool.ensure_threads(threads.min(hardware_threads()));
        let tasks: Vec<ScopedTask<'_>> = bs
            .chunks(chunk)
            .zip(results.iter_mut())
            .map(|(part, slot)| {
                let task: ScopedTask<'_> = Box::new(move || {
                    *slot = Some(part.iter().map(|b| self.solve(b)).collect());
                });
                task
            })
            .collect();
        pool.scope_run(tasks);
        let mut reports = Vec::with_capacity(bs.len());
        for r in results {
            reports.extend(r.expect("chunk task completed")?);
        }
        Ok(amortized(reports))
    }

    /// Zero-allocation batched warm solve (tier 3): contiguous chunks
    /// of the batch run fused panels ([`SolverEngine::solve_panel_into`])
    /// on the persistent worker pool, writing into the caller's output
    /// vectors. Workspaces are recycled from an engine-internal pool,
    /// so steady-state calls allocate nothing.
    ///
    /// `outs` must hold exactly one vector per right-hand side
    /// (anything else is a typed error, not a panic); each is resized
    /// to `n` on first use (the only allocation, once). Results are
    /// bit-identical to [`SolverEngine::solve`] per RHS and
    /// deterministic across worker counts.
    pub fn solve_batch_into(
        &self,
        bs: &[Vec<f64>],
        outs: &mut [Vec<f64>],
    ) -> Result<(), SolveError> {
        self.validate_batch_dims(bs)?;
        if outs.len() != bs.len() {
            return Err(SolveError::OutputLength { n: bs.len(), out: outs.len(), buffer: "outs" });
        }
        let _g = SpanGuard::enter(Site::SolveBatch);
        let sw = Stopwatch::start();
        let threads = hardware_threads().clamp(1, bs.len().max(1));
        // a panel only pays off with ≥ 2 lanes per worker; below that,
        // solve on the caller's thread without touching the pool
        if threads == 1 || bs.len() < 2 * exec::PANEL_K {
            let mut ws = self.take_workspace();
            let r = self.solve_panel_into(bs, outs, &mut ws);
            self.put_workspace(ws);
            sw.stop(Hist::SolveBatchNs);
            return r;
        }
        let chunk = bs.len().div_ceil(threads);
        let n_chunks = bs.len().div_ceil(chunk);
        let mut results: Vec<Option<Result<(), SolveError>>> =
            (0..n_chunks).map(|_| None).collect();
        let pool = self.pool();
        pool.ensure_threads(threads);
        let tasks: Vec<ScopedTask<'_>> = bs
            .chunks(chunk)
            .zip(outs.chunks_mut(chunk))
            .zip(results.iter_mut())
            .map(|((cb, co), slot)| {
                let task: ScopedTask<'_> = Box::new(move || {
                    let mut ws = self.take_workspace();
                    *slot = Some(self.solve_panel_into(cb, co, &mut ws));
                    self.put_workspace(ws);
                });
                task
            })
            .collect();
        pool.scope_run(tasks);
        for r in results {
            r.expect("chunk task completed")?;
        }
        sw.stop(Hist::SolveBatchNs);
        Ok(())
    }

    /// The calibration run's report (timings, machine statistics, event
    /// counts — every value-independent field of a warm solve), shared
    /// behind `Arc`. `None` for the serial variant, which has no
    /// simulated timeline.
    pub fn calibration(&self) -> Option<&Arc<SolveReport>> {
        match &self.variant {
            Variant::Simulated(p) => Some(&p.structure.template),
            Variant::Serial(_) => None,
        }
    }

    /// The resources (pool + workspace free-list) behind this engine's
    /// warm tiers, shareable with further engines via
    /// [`SolverEngine::build_shared`].
    pub fn resources(&self) -> &Arc<EngineResources> {
        &self.resources
    }

    /// The engine's flat dependency adjacency, for crate-internal
    /// composition — every variant has one (the serial variant carries
    /// the columns-only form). Returned as a read guard: the borrow is
    /// pinned to one value epoch, and a concurrent refresh waits for it.
    pub(crate) fn analysis(&self) -> AnalysisGuard<'_> {
        match &self.variant {
            Variant::Serial(a) => AnalysisGuard::Direct(rlock(a)),
            Variant::Simulated(p) => AnalysisGuard::Prepared(rlock(&p.numeric)),
        }
    }

    fn pool(&self) -> &WorkerPool {
        self.resources.pool()
    }

    /// The worker count a sharded solve may actually mount right now:
    /// the requested width, except from inside a pool task (a nested
    /// parallel region cannot guarantee each index its own thread), or
    /// for a non-positive request — both degrade to the serial replay.
    fn effective_shard_workers(&self, requested: usize) -> usize {
        if pool::on_worker_thread() {
            1
        } else {
            requested.max(1)
        }
    }

    fn take_workspace(&self) -> SolveWorkspace {
        self.resources.take_workspace()
    }

    fn put_workspace(&self, ws: SolveWorkspace) {
        self.resources.put_workspace(ws);
    }

    /// Check every right-hand side of a batch *before* any solve runs,
    /// naming the offending index — a short vector in the middle of a
    /// batch must fail fast and point at itself, not surface as a
    /// mid-batch error after earlier chunks already solved.
    fn validate_batch_dims(&self, bs: &[Vec<f64>]) -> Result<(), SolveError> {
        let n = self.m.n();
        if let Some((k, bad)) = bs.iter().enumerate().find(|(_, b)| b.len() != n) {
            return Err(SolveError::DimensionMismatch {
                n,
                rhs: bad.len(),
                index: Some(k),
                buffer: "rhs",
            });
        }
        Ok(())
    }

    /// Whether the natural substitution order ascends (lower triangle)
    /// or descends (upper) — the replay direction of the serial
    /// reference.
    #[inline]
    fn ascending(&self) -> bool {
        self.opts.triangle == Triangle::Lower
    }

    /// Allocation-free verification: replay the natural-order serial
    /// reference off the given analysis into workspace scratch and
    /// compare. No-op unless `opts.verify`. Takes the analysis rather
    /// than reading `self.m` so the reference always uses the values of
    /// the epoch the caller's guard pinned — the build matrix's values
    /// go stale after a refresh.
    fn verify_into(
        &self,
        a: &ExecAnalysis,
        b: &[f64],
        x: &[f64],
        ws: &mut SolveWorkspace,
    ) -> Result<(), SolveError> {
        if !self.opts.verify {
            return Ok(());
        }
        let n = self.m.n();
        ws.scratch.resize(n, 0.0);
        ws.ref_x.resize(n, 0.0);
        a.replay_natural_into(self.ascending(), b, &mut ws.scratch, &mut ws.ref_x);
        let err = verify::rel_inf_diff(x, &ws.ref_x);
        if err > verify::DEFAULT_TOL {
            return Err(SolveError::Verification { rel_err: err });
        }
        Ok(())
    }

    /// Replace the engine's numeric values in place with `m2`'s —
    /// **zero symbolic work**: no level sets, no plan, no adjacency
    /// construction, no calibration; on a clean factor, no allocation
    /// either. `m2` must carry the identical sparsity pattern the
    /// engine was built for.
    ///
    /// Validation runs *before* any mutation: a structure drift is a
    /// typed [`SolveError::StructureMismatch`], a non-finite value or
    /// zero pivot a typed [`SolveError::Matrix`] (the same
    /// [`sparsemat::audit_factor`] verdicts a cold build enforces) —
    /// and on any failure the engine is untouched and keeps serving the
    /// old values bit-identically (strong exception guarantee).
    ///
    /// The commit takes the numeric write lock, so it waits for
    /// in-flight solves (which hold read guards) and blocks new ones
    /// until the swap is done: every solve observes exactly one value
    /// epoch. After a commit, all four warm tiers produce bit-for-bit
    /// the solutions of a cold [`SolverEngine::build`] on `m2`.
    pub fn refresh_values(&self, m2: &CscMatrix) -> Result<RefreshReport, SolveError> {
        let _g = SpanGuard::enter(Site::ValueRefresh);
        let sw = Stopwatch::start();
        let audit = self.validate_refresh(m2)?;
        // injected mid-refresh crash: sits after validation and before
        // the first mutation, so an interrupted refresh leaves the old
        // epoch fully intact (asserted by the chaos suite)
        fault::fire_panic(FaultSite::ValueRefresh);
        let report = self.commit_refresh(m2, audit);
        sw.stop(Hist::RefreshNs);
        Ok(report)
    }

    /// The fallible half of [`SolverEngine::refresh_values`]: check
    /// structure identity and audit the new values, touching nothing.
    /// Split from the infallible [`SolverEngine::commit_refresh`] so a
    /// multi-engine caller (the L/U preconditioner pair) can validate
    /// *every* side before committing *any* — pair-atomic refresh.
    pub(crate) fn validate_refresh(&self, m2: &CscMatrix) -> Result<FactorAudit, SolveError> {
        // exact, entry-for-entry structure identity — cheaper than
        // hashing and allocation-free; the hashes are only computed on
        // the failure path, to name both identities in the error
        if m2.n() != self.m.n()
            || m2.col_ptr() != self.m.col_ptr()
            || m2.row_idx() != self.m.row_idx()
        {
            return Err(SolveError::StructureMismatch {
                expected: FactorFingerprint::of(self.m).structure_hash(),
                got: FactorFingerprint::of(m2).structure_hash(),
            });
        }
        // same sweep a cold build runs — but a refresh rejects *all*
        // findings: zero pivots would have failed the cold build's
        // triangular validation, and duplicates cannot appear under an
        // identical structure, so any finding here is disqualifying
        let audit = sparsemat::audit_factor(m2);
        if let Some(e) = audit.first_error() {
            return Err(SolveError::Matrix(e));
        }
        Ok(audit)
    }

    /// The infallible half of [`SolverEngine::refresh_values`]: rewrite
    /// the value arrays under the write lock and bump the epoch. Only
    /// call with a matrix [`SolverEngine::validate_refresh`] accepted.
    pub(crate) fn commit_refresh(&self, m2: &CscMatrix, audit: FactorAudit) -> RefreshReport {
        let mut guard = self.lock_numeric_mut();
        self.commit_refresh_locked(&mut guard, m2, audit)
    }

    /// Take this engine's numeric write lock without mutating anything.
    /// A multi-engine commit (the L/U preconditioner pair) locks every
    /// engine first — in the same fwd-then-bwd order appliers take read
    /// guards, so no deadlock — and only then commits each side: no
    /// reader can ever observe a half-refreshed pair.
    pub(crate) fn lock_numeric_mut(&self) -> NumericWriteGuard<'_> {
        match &self.variant {
            Variant::Serial(a) => NumericWriteGuard::Direct(wlock(a)),
            Variant::Simulated(p) => NumericWriteGuard::Prepared(wlock(&p.numeric)),
        }
    }

    /// [`SolverEngine::commit_refresh`] against an already-held write
    /// guard (see [`SolverEngine::lock_numeric_mut`]).
    pub(crate) fn commit_refresh_locked(
        &self,
        guard: &mut NumericWriteGuard<'_>,
        m2: &CscMatrix,
        audit: FactorAudit,
    ) -> RefreshReport {
        match guard {
            NumericWriteGuard::Direct(a) => a.refresh_values(m2, self.opts.triangle),
            NumericWriteGuard::Prepared(num) => {
                // split the guard so the sharded schedule can read the
                // freshly rewritten adjacency it mirrors
                let NumericState { analysis, sharded } = &mut **num;
                analysis.refresh_values(m2, self.opts.triangle);
                sharded.refresh_values(analysis);
            }
        }
        // a clean audit's example lists are empty, so the clone (and
        // the whole commit) allocates nothing
        *wlock(&self.audit) = audit.clone();
        let value_epoch = self.value_epoch.fetch_add(1, Ordering::Release) + 1;
        RefreshReport { n: m2.n(), nnz: m2.nnz(), value_epoch, audit }
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Assemble the amortized multi-RHS accounting: the analysis phase is
/// structure-only, so it is charged on the first solve and elided on
/// the rest.
fn amortized(reports: Vec<SolveReport>) -> MultiRhsReport {
    let mut total = 0u64;
    for (k, r) in reports.iter().enumerate() {
        total += if k == 0 { r.timings.total.as_ns() } else { r.timings.solve.as_ns() };
    }
    MultiRhsReport { reports, total: SimTime::from_ns(total) }
}

fn single_gpu(cfg: &MachineConfig) -> MachineConfig {
    let mut c = cfg.clone();
    c.gpus = 1;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen;

    fn small() -> (CscMatrix, Vec<f64>) {
        let m = gen::level_structured(&gen::LevelSpec::new(900, 18, 3600, 4));
        let (_, b) = verify::rhs_for(&m, 42);
        (m, b)
    }

    #[test]
    fn warm_solves_build_nothing() {
        let (m, b) = small();
        let opts = SolveOptions::default();
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let levels_before = sparsemat::levels::analyze_invocations();
        let plans_before = crate::plan::build_invocations();
        let exec_before = exec::analysis_builds();
        let r1 = engine.solve(&b).unwrap();
        let r2 = engine.solve(&b).unwrap();
        assert_eq!(sparsemat::levels::analyze_invocations(), levels_before);
        assert_eq!(crate::plan::build_invocations(), plans_before);
        assert_eq!(exec::analysis_builds(), exec_before);
        assert_eq!(r1.x, r2.x, "warm solves are bit-identical");
        assert_eq!(r1.timings.total, r2.timings.total);
    }

    #[test]
    fn serial_variant_reports_degenerate_schedule_stats() {
        // regression: `SolveReport.schedule` used to be `None` for the
        // plain serial variant, forcing every consumer to special-case
        let (m, b) = small();
        let opts = SolveOptions { kind: SolverKind::Serial, ..Default::default() };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(1), &opts).unwrap();
        let r = engine.solve(&b).unwrap();
        let s = r.schedule.expect("serial reports populate schedule stats");
        assert_eq!(s, ScheduleStats::serial(m.n()));
        assert_eq!((s.chains, s.barriers_per_solve), (1, 0));
        assert_eq!(s.rows, m.n());
        // untraced solves embed the zero-cost default telemetry digest
        assert_eq!(r.telemetry, crate::telemetry::TelemetryReport::default());
    }

    #[test]
    fn refresh_report_display_is_a_single_line() {
        let (m, _) = small();
        let engine =
            SolverEngine::build(&m, MachineConfig::dgx1(4), &SolveOptions::default()).unwrap();
        let rep = engine.refresh_values(&m).unwrap();
        let line = rep.to_string();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("refresh: "), "{line}");
        assert!(line.contains(&format!("n={}", m.n())), "{line}");
        assert!(line.contains(&format!("nnz={}", m.nnz())), "{line}");
        assert!(line.contains("value epoch 1") && line.contains("audit clean"), "{line}");
    }

    #[test]
    fn engine_rejects_non_p2p_at_build_time() {
        let (m, _) = small();
        let opts = SolveOptions::default();
        let err = SolverEngine::build(&m, MachineConfig::dgx1(8), &opts).unwrap_err();
        assert!(matches!(err, SolveError::NotP2p { gpus: 8 }));
    }

    #[test]
    fn engine_rejects_bad_dimensions_per_solve() {
        let (m, _) = small();
        let engine =
            SolverEngine::build(&m, MachineConfig::dgx1(4), &SolveOptions::default()).unwrap();
        let err = engine.solve(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SolveError::DimensionMismatch { .. }));
        // a wrong-length *output* buffer is a distinct error, so the
        // caller is pointed at the right argument
        let (_, b) = verify::rhs_for(&m, 1);
        let mut ws = SolveWorkspace::new();
        let mut short = vec![0.0; 3];
        let err = engine.solve_into(&b, &mut short, &mut ws).unwrap_err();
        assert!(matches!(err, SolveError::OutputLength { out: 3, .. }));
    }

    #[test]
    fn batch_matches_sequential_and_is_deterministic() {
        let (m, _) = small();
        let bs: Vec<Vec<f64>> = (0..8).map(|k| verify::rhs_for(&m, 500 + k).1).collect();
        let opts = SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let seq = engine.solve_multi_rhs(&bs).unwrap();
        let par_a = engine.solve_batch_with_threads(&bs, 4).unwrap();
        let par_b = engine.solve_batch_with_threads(&bs, 3).unwrap();
        assert_eq!(seq.total, par_a.total);
        assert_eq!(par_a.total, par_b.total);
        for ((s, a), b) in seq.reports.iter().zip(&par_a.reports).zip(&par_b.reports) {
            assert_eq!(s.x, a.x);
            assert_eq!(a.x, b.x);
            assert_eq!(s.timings.total, a.timings.total);
        }
    }

    #[test]
    fn batch_amortizes_analysis() {
        let (m, _) = small();
        let bs: Vec<Vec<f64>> = (0..4).map(|k| verify::rhs_for(&m, 100 + k).1).collect();
        let opts = SolveOptions { kind: SolverKind::Unified, ..Default::default() };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let multi = engine.solve_batch(&bs).unwrap();
        assert_eq!(multi.reports.len(), 4);
        assert!(multi.total < multi.unamortized_total());
    }

    #[test]
    fn engine_survives_poisoned_workspace_pool() {
        let (m, b) = small();
        let engine =
            SolverEngine::build(&m, MachineConfig::dgx1(4), &SolveOptions::default()).unwrap();
        let bs: Vec<Vec<f64>> = (0..4).map(|k| verify::rhs_for(&m, 700 + k).1).collect();
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
        engine.solve_batch_into(&bs, &mut outs).unwrap();
        let before = outs.clone();

        // Poison the shared workspace free-list the way a panicked pool
        // task would: a thread dies while holding the lock.
        let resources = Arc::clone(engine.resources());
        let poisoner = std::thread::spawn(move || {
            let _guard = resources.workspaces.0.lock().unwrap();
            panic!("simulated panicked solve while holding the workspace pool");
        });
        assert!(poisoner.join().is_err(), "poisoner must panic");
        assert!(engine.resources().workspaces.0.lock().is_err(), "mutex must be poisoned");

        // Every warm tier that recycles workspaces must keep working —
        // one panicked solve must not brick the engine for good.
        engine.solve_batch_into(&bs, &mut outs).unwrap();
        assert_eq!(outs, before, "post-poison solves stay bit-identical");
        let r = engine.solve(&b).unwrap();
        assert!(verify::rel_inf_diff(&r.x, &before[0]) >= 0.0); // solvable, no panic
    }

    #[test]
    fn batch_errors_name_the_offending_index() {
        let (m, _) = small();
        let engine =
            SolverEngine::build(&m, MachineConfig::dgx1(4), &SolveOptions::default()).unwrap();
        let n = m.n();
        let mut bs: Vec<Vec<f64>> = (0..5).map(|k| verify::rhs_for(&m, 300 + k).1).collect();
        bs[3] = vec![1.0; 7]; // one short RHS in the middle of the batch
        let expect_index = |err: SolveError| {
            assert!(
                matches!(err, SolveError::DimensionMismatch { n: en, rhs: 7, index: Some(3), .. } if en == n),
                "expected index-naming mismatch"
            );
        };
        expect_index(engine.solve_multi_rhs(&bs).unwrap_err());
        expect_index(engine.solve_batch(&bs).unwrap_err());
        expect_index(engine.solve_batch_with_threads(&bs, 2).unwrap_err());
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
        expect_index(engine.solve_batch_into(&bs, &mut outs).unwrap_err());
        let mut ws = SolveWorkspace::new();
        expect_index(engine.solve_panel_into(&bs, &mut outs, &mut ws).unwrap_err());
        let msg = engine.solve_multi_rhs(&bs).unwrap_err().to_string();
        assert!(msg.contains("#3"), "display must name the index: {msg}");
    }

    /// Worker counts of zero are clamped to one everywhere a count is
    /// accepted — a degenerate request degrades to the serial tier
    /// with bit-identical results, never a panic.
    #[test]
    fn zero_worker_counts_are_clamped() {
        let (m, b) = small();
        let engine =
            SolverEngine::build(&m, MachineConfig::dgx1(4), &SolveOptions::default()).unwrap();
        let expect = engine.solve(&b).unwrap().x;
        let mut ws = SolveWorkspace::new();
        let mut out = vec![0.0; m.n()];
        engine.solve_sharded_into(&b, &mut out, &mut ws, 0).unwrap();
        assert_eq!(out, expect);
        let bs: Vec<Vec<f64>> = (0..3).map(|k| verify::rhs_for(&m, 800 + k).1).collect();
        let multi = engine.solve_batch_with_threads(&bs, 0).unwrap();
        assert_eq!(multi.reports.len(), 3);
    }

    #[test]
    fn serial_and_levelset_variants_work_warm() {
        let (m, b) = small();
        for kind in [SolverKind::Serial, SolverKind::LevelSet] {
            let opts = SolveOptions { kind, ..Default::default() };
            let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
            let r1 = engine.solve(&b).unwrap();
            let r2 = engine.solve(&b).unwrap();
            assert_eq!(r1.x, r2.x);
            assert!(r1.verified_rel_err.unwrap() <= verify::DEFAULT_TOL);
        }
    }
}
