//! Serial reference solvers (Algorithm 1 of the paper).
//!
//! These are the ground truth: every parallel variant's solution is
//! compared against [`solve_lower`] / [`solve_upper`] by the test suite
//! and by [`crate::solver::solve`] when verification is enabled.

use sparsemat::{CscMatrix, MatrixError, Triangle};

/// Forward substitution for `Lx = b` on a CSC lower-triangular matrix.
///
/// Column-oriented exactly like Algorithm 1: solve `x_j`, then push
/// `l_ij · x_j` into the running `left_sum` of every dependent row.
///
/// # Errors
/// Returns the validation error if `l` is not a solvable lower factor.
pub fn solve_lower(l: &CscMatrix, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    let mut x = vec![0.0; l.n()];
    let mut left_sum = vec![0.0; l.n()];
    solve_lower_into(l, b, &mut left_sum, &mut x)?;
    Ok(x)
}

/// Allocation-free [`solve_lower`]: the caller provides the `left_sum`
/// scratch and the output vector (both length `n`). Bit-identical to
/// the allocating version.
pub fn solve_lower_into(
    l: &CscMatrix,
    b: &[f64],
    left_sum: &mut [f64],
    x: &mut [f64],
) -> Result<(), MatrixError> {
    l.validate_triangular(Triangle::Lower)?;
    lower_into_prevalidated(l, b, left_sum, x);
    Ok(())
}

/// [`solve_lower_into`] minus the O(nnz) validation sweep — for callers
/// that validated the factor once up front (the solver engine does at
/// build time) and must not re-pay it per warm solve.
pub(crate) fn lower_into_prevalidated(
    l: &CscMatrix,
    b: &[f64],
    left_sum: &mut [f64],
    x: &mut [f64],
) {
    let n = l.n();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(left_sum.len(), n, "left_sum scratch length mismatch");
    assert_eq!(x.len(), n, "output length mismatch");
    left_sum.fill(0.0);
    let col_ptr = l.col_ptr();
    let row_idx = l.row_idx();
    let values = l.values();
    for j in 0..n {
        let lo = col_ptr[j];
        let hi = col_ptr[j + 1];
        // sorted column: the diagonal is first
        let diag = values[lo];
        let xj = (b[j] - left_sum[j]) / diag;
        x[j] = xj;
        for k in lo + 1..hi {
            left_sum[row_idx[k] as usize] += values[k] * xj;
        }
    }
}

/// Backward substitution for `Ux = b` on a CSC upper-triangular matrix.
///
/// # Errors
/// Returns the validation error if `u` is not a solvable upper factor.
pub fn solve_upper(u: &CscMatrix, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    let mut x = vec![0.0; u.n()];
    let mut left_sum = vec![0.0; u.n()];
    solve_upper_into(u, b, &mut left_sum, &mut x)?;
    Ok(x)
}

/// Allocation-free [`solve_upper`]; see [`solve_lower_into`].
pub fn solve_upper_into(
    u: &CscMatrix,
    b: &[f64],
    left_sum: &mut [f64],
    x: &mut [f64],
) -> Result<(), MatrixError> {
    u.validate_triangular(Triangle::Upper)?;
    upper_into_prevalidated(u, b, left_sum, x);
    Ok(())
}

/// [`solve_upper_into`] minus the validation sweep; see
/// [`lower_into_prevalidated`].
pub(crate) fn upper_into_prevalidated(
    u: &CscMatrix,
    b: &[f64],
    left_sum: &mut [f64],
    x: &mut [f64],
) {
    let n = u.n();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(left_sum.len(), n, "left_sum scratch length mismatch");
    assert_eq!(x.len(), n, "output length mismatch");
    left_sum.fill(0.0);
    let col_ptr = u.col_ptr();
    let row_idx = u.row_idx();
    let values = u.values();
    for j in (0..n).rev() {
        let lo = col_ptr[j];
        let hi = col_ptr[j + 1];
        // sorted column: the diagonal is last
        let diag = values[hi - 1];
        let xj = (b[j] - left_sum[j]) / diag;
        x[j] = xj;
        for k in lo..hi - 1 {
            left_sum[row_idx[k] as usize] += values[k] * xj;
        }
    }
}

/// Dispatch on triangle.
pub fn solve_serial(m: &CscMatrix, b: &[f64], tri: Triangle) -> Result<Vec<f64>, MatrixError> {
    match tri {
        Triangle::Lower => solve_lower(m, b),
        Triangle::Upper => solve_upper(m, b),
    }
}

/// Allocation-free [`solve_serial`]: dispatch on triangle with
/// caller-provided scratch and output.
pub fn solve_serial_into(
    m: &CscMatrix,
    b: &[f64],
    tri: Triangle,
    left_sum: &mut [f64],
    x: &mut [f64],
) -> Result<(), MatrixError> {
    match tri {
        Triangle::Lower => solve_lower_into(m, b, left_sum, x),
        Triangle::Upper => solve_upper_into(m, b, left_sum, x),
    }
}

/// Multiple right-hand sides: solve `L X = B` column by column
/// (the Liu et al. \[2\] multi-RHS setting).
pub fn solve_multi(
    m: &CscMatrix,
    bs: &[Vec<f64>],
    tri: Triangle,
) -> Result<Vec<Vec<f64>>, MatrixError> {
    bs.iter().map(|b| solve_serial(m, b, tri)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen;
    use sparsemat::TripletBuilder;

    #[test]
    fn solves_identity() {
        let m = CscMatrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(solve_lower(&m, &b).unwrap(), b);
        assert_eq!(solve_upper(&m, &b).unwrap(), b);
    }

    #[test]
    fn solves_small_lower_by_hand() {
        // | 2 0 | |x0|   |2|          x0 = 1
        // | 1 4 | |x1| = |6|   =>     x1 = (6-1)/4 = 1.25
        let mut b = TripletBuilder::new(2);
        b.push(0, 0, 2.0);
        b.push(1, 0, 1.0);
        b.push(1, 1, 4.0);
        let l = b.build().unwrap();
        let x = solve_lower(&l, &[2.0, 6.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.25]);
    }

    #[test]
    fn roundtrip_lower_matvec() {
        let l = gen::banded_lower(500, 8, 4.0, 3);
        let x_true: Vec<f64> = (0..500).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b = l.matvec(&x_true);
        let x = solve_lower(&l, &b).unwrap();
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
    }

    #[test]
    fn roundtrip_upper_matvec() {
        let u = gen::banded_lower(400, 8, 4.0, 5).transpose();
        let x_true: Vec<f64> = (0..400).map(|i| (i as f64).sin()).collect();
        let b = u.matvec(&x_true);
        let x = solve_upper(&u, &b).unwrap();
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-9);
        }
    }

    #[test]
    fn upper_is_transpose_consistent() {
        // Solving L x = b and (Lᵀ)ᵀ x = b must agree.
        let l = gen::banded_lower(100, 4, 3.0, 9);
        let b: Vec<f64> = (0..100).map(|i| i as f64 * 0.25 - 10.0).collect();
        let x1 = solve_lower(&l, &b).unwrap();
        let u = l.transpose();
        // L x = b  <=>  solving with U = Lᵀ in "upper mode" on bᵀ-system
        // is a different system; instead verify U xu = b directly.
        let xu = solve_upper(&u, &b).unwrap();
        let back = u.matvec(&xu);
        for (a, e) in back.iter().zip(&b) {
            assert!((a - e).abs() < 1e-8);
        }
        // and the lower solve residual too
        let back_l = l.matvec(&x1);
        for (a, e) in back_l.iter().zip(&b) {
            assert!((a - e).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_singular() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 0, 0.0);
        b.push(1, 1, 1.0);
        let l = b.build().unwrap();
        assert!(solve_lower(&l, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn rejects_wrong_triangle() {
        let l = gen::banded_lower(10, 2, 2.0, 1);
        assert!(solve_upper(&l, &[1.0; 10]).is_err());
    }

    #[test]
    fn multi_rhs_matches_single() {
        let l = gen::banded_lower(64, 4, 3.0, 2);
        let b1: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let b2: Vec<f64> = (0..64).map(|i| (i as f64).cos()).collect();
        let xs = solve_multi(&l, &[b1.clone(), b2.clone()], Triangle::Lower).unwrap();
        assert_eq!(xs[0], solve_lower(&l, &b1).unwrap());
        assert_eq!(xs[1], solve_lower(&l, &b2).unwrap());
    }

    #[test]
    fn level_structured_roundtrip() {
        let spec = gen::LevelSpec::new(2000, 37, 9000, 17);
        let l = gen::level_structured(&spec);
        let x_true: Vec<f64> = (0..2000).map(|i| ((i % 17) as f64) / 3.0 - 2.0).collect();
        let b = l.matvec(&x_true);
        let x = solve_lower(&l, &b).unwrap();
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-7);
        }
    }
}
