//! Chaos suite for the fault-injection plane (`sptrsv::fault`) and the
//! self-healing serving stack (requires `--features fault-inject`;
//! gated via `required-features` in Cargo.toml).
//!
//! Two layers:
//!
//! * **Targeted scenarios** — one fault site each, armed with rate 1.0
//!   and a small budget so the failure lands at a known place, with
//!   exact assertions on containment (who failed, with what type, and
//!   which counters moved).
//! * **The 64-seed sweep** — mixed fault plans over mixed concurrent
//!   traffic, asserting the three global invariants: every ticket
//!   resolves (bit-identical to a serial solve, or a typed error), the
//!   service never deadlocks (watchdog), and the final report
//!   reconciles with the plan's fired counters.
//!
//! Fault plans are process-global, so every test serializes on one
//! mutex.

use mgpu_sim::MachineConfig;
use sparsemat::gen::{self, LevelSpec};
use sparsemat::CscMatrix;
use sptrsv::fault::{self, FaultPlan, FaultSite};
use sptrsv::serve::{
    RetryPolicy, ServeError, ServiceConfig, ServiceEngine, ServiceHealth, SolverService,
    BREAKER_COOLDOWN_PANELS, BREAKER_TRIP_PANELS,
};
use sptrsv::{verify, SolveError, SolveOptions, SolverEngine, SolverKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fault plans install process-globally; chaos tests must not overlap.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Abort the whole process (with a recognizable message) if `f` does
/// not finish within `secs` — a hung ticket or dispatcher must fail
/// the suite, not hang CI.
fn with_watchdog<R>(secs: u64, f: impl FnOnce() -> R) -> R {
    let done = Arc::new(AtomicBool::new(false));
    let observer = Arc::clone(&done);
    let dog = std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while Instant::now() < deadline {
            if observer.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("chaos watchdog: no progress in {secs}s — deadlock suspected, aborting");
        std::process::abort();
    });
    let r = f();
    done.store(true, Ordering::Relaxed);
    let _ = dog.join();
    r
}

fn fixture() -> (CscMatrix, SolveOptions) {
    let m = gen::level_structured(&LevelSpec::new(1200, 24, 5000, 17));
    let opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        // verification would fail a whole panel on an injected NaN
        // lane; the chaos invariants are asserted client-side instead
        verify: false,
        ..SolveOptions::default()
    };
    (m, opts)
}

/// Acceptance scenario: a dispatcher panic under `run_supervised`
/// fails only the in-flight requests (typed `Retryable`), restarts the
/// dispatcher, and the service keeps serving bit-identically; the
/// report counts exactly the plan's fires.
#[test]
fn dispatcher_panic_supervised_restart_recovers() {
    let _g = chaos_guard();
    let (m, opts) = fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(2), &opts).unwrap();
    let plan = Arc::new(
        FaultPlan::new(0xD15)
            .with_rate(FaultSite::DispatcherPanic, 1.0)
            .with_budget(FaultSite::DispatcherPanic, 1),
    );
    let cfg = ServiceConfig { supervision_seed: 0xD15, ..ServiceConfig::default() };

    let report = with_watchdog(120, || {
        fault::with_plan(&plan, || {
            let ((), report) =
                SolverService::run_supervised(ServiceEngine::Solver(&engine), &cfg, |svc| {
                    // first wave rides the panicking incarnation
                    let mut retryable = 0u64;
                    for k in 0..4u64 {
                        let (_, b) = verify::rhs_for(&m, 50 + k);
                        match svc.submit(&b).unwrap().wait() {
                            Ok(x) => assert_eq!(x, engine.solve(&b).unwrap().x),
                            Err(ServeError::Retryable { .. }) => retryable += 1,
                            Err(e) => panic!("unexpected error under supervision: {e}"),
                        }
                    }
                    assert!(retryable >= 1, "the injected panic must fail at least one ticket");
                    // second wave must be served normally by the
                    // restarted dispatcher — resubmission succeeds
                    for k in 0..4u64 {
                        let (_, b) = verify::rhs_for(&m, 50 + k);
                        let x =
                            svc.submit(&b).unwrap().wait().expect("restarted dispatcher serves");
                        assert_eq!(x, engine.solve(&b).unwrap().x, "bit-identical after restart");
                    }
                    assert_ne!(svc.health(), ServiceHealth::Draining);
                })
                .unwrap();
            report
        })
    });
    assert_eq!(plan.fired(FaultSite::DispatcherPanic), 1);
    assert_eq!(report.dispatcher_restarts, 1, "one fire, one supervised restart");
    assert!(report.failed >= 1);
}

/// Acceptance scenario: one post-admission RHS corruption inside a
/// burst fails exactly that request with `SolveError::NonFinite`
/// (buffer `"x"`), and its panel-mates still complete bit-identically
/// after the quarantine retry.
#[test]
fn rhs_corruption_fails_one_lane_mates_bit_identical() {
    let _g = chaos_guard();
    let (m, opts) = fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(2), &opts).unwrap();
    let plan = Arc::new(
        FaultPlan::new(0xBAD)
            .with_rate(FaultSite::RhsCorruptNonFinite, 1.0)
            .with_budget(FaultSite::RhsCorruptNonFinite, 1),
    );
    // a generous linger so the whole burst coalesces into one panel
    let cfg = ServiceConfig {
        scan_outputs: true,
        max_linger: Duration::from_millis(100),
        ..ServiceConfig::default()
    };
    const BURST: u64 = 8;

    let report = with_watchdog(120, || {
        fault::with_plan(&plan, || {
            let bs: Vec<Vec<f64>> = (0..BURST).map(|k| verify::rhs_for(&m, 900 + k).1).collect();
            let ((), report) = SolverService::run(ServiceEngine::Solver(&engine), &cfg, |svc| {
                let tickets: Vec<_> = bs.iter().map(|b| svc.submit(b).unwrap()).collect();
                let mut poisoned = 0u64;
                for (k, t) in tickets.into_iter().enumerate() {
                    let (_, b) = verify::rhs_for(&m, 900 + k as u64);
                    match t.wait() {
                        Ok(x) => assert_eq!(
                            x,
                            engine.solve(&b).unwrap().x,
                            "panel-mate {k} must be bit-identical despite the poisoned lane"
                        ),
                        Err(ServeError::Solve(SolveError::NonFinite { buffer, .. })) => {
                            assert_eq!(buffer, "x", "caught by the output scan");
                            poisoned += 1;
                        }
                        Err(e) => panic!("request {k}: unexpected error {e}"),
                    }
                }
                assert_eq!(poisoned, 1, "exactly the corrupted request fails");
            })
            .unwrap();
            report
        })
    });
    assert_eq!(plan.fired(FaultSite::RhsCorruptNonFinite), 1);
    assert_eq!(report.poisoned_lanes, 1);
    assert!(report.panel_retries >= 1, "clean mates were re-solved");
    assert_eq!(report.served, BURST - 1);
}

/// A permanently-failing fused panel path trips the circuit breaker
/// after `BREAKER_TRIP_PANELS` consecutive failures; the service then
/// serves on the degraded per-request serial path (bit-identical),
/// probes the fused path again after `BREAKER_COOLDOWN_PANELS`, and
/// re-trips — fully deterministic under sequential traffic.
#[test]
fn breaker_trips_and_degrades_to_serial() {
    let _g = chaos_guard();
    let (m, opts) = fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(2), &opts).unwrap();
    let plan = Arc::new(FaultPlan::new(0x0B).with_rate(FaultSite::PanelSolve, 1.0));
    let cfg = ServiceConfig::default();
    let trip = BREAKER_TRIP_PANELS as u64;
    let cooldown = BREAKER_COOLDOWN_PANELS as u64;
    let requests = 2 * trip + cooldown + 2; // trip, cool down, re-trip, degrade again

    let report = with_watchdog(120, || {
        fault::with_plan(&plan, || {
            let ((), report) = SolverService::run(ServiceEngine::Solver(&engine), &cfg, |svc| {
                let mut failed = 0u64;
                let mut served = 0u64;
                for k in 0..requests {
                    let (_, b) = verify::rhs_for(&m, 300 + k);
                    match svc.submit(&b).unwrap().wait() {
                        Ok(x) => {
                            assert_eq!(
                                x,
                                engine.solve(&b).unwrap().x,
                                "degraded serial path stays bit-identical"
                            );
                            served += 1;
                        }
                        Err(ServeError::DispatcherPanicked) => failed += 1,
                        Err(e) => panic!("request {k}: unexpected error {e}"),
                    }
                    if k == trip {
                        assert!(
                            matches!(svc.health(), ServiceHealth::Degraded { .. }),
                            "breaker open must surface as Degraded"
                        );
                    }
                }
                // sequential traffic → one request per panel → exact
                // schedule: 3 fail, 16 degraded, 3 fail, rest degraded
                assert_eq!(failed, 2 * trip);
                assert_eq!(served, requests - 2 * trip);
            })
            .unwrap();
            report
        })
    });
    assert_eq!(report.breaker_trips, 2);
    assert_eq!(report.degraded_solves, cooldown + 2);
    assert!(plan.fired(FaultSite::PanelSolve) >= 2 * trip);
}

/// Injected admission shedding surfaces as ordinary `QueueFull`, and
/// `submit_with_retry`'s bounded deterministic backoff absorbs it;
/// the report's `admission_shed` reconciles exactly with the plan.
#[test]
fn submit_with_retry_absorbs_admission_shedding() {
    let _g = chaos_guard();
    let (m, opts) = fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(2), &opts).unwrap();
    let plan = Arc::new(FaultPlan::new(0xA110).with_rate(FaultSite::AdmissionAlloc, 0.5));
    let cfg = ServiceConfig::default();
    let policy = RetryPolicy { max_attempts: 32, ..RetryPolicy::default() };

    let report = with_watchdog(120, || {
        fault::with_plan(&plan, || {
            let ((), report) = SolverService::run(ServiceEngine::Solver(&engine), &cfg, |svc| {
                for k in 0..24u64 {
                    let (_, b) = verify::rhs_for(&m, 700 + k);
                    let x = svc
                        .submit_with_retry(&b, &policy)
                        .expect("32 attempts at shed rate 0.5 cannot all lose")
                        .wait()
                        .unwrap();
                    assert_eq!(x, engine.solve(&b).unwrap().x);
                }
            })
            .unwrap();
            report
        })
    });
    assert!(report.admission_shed >= 1, "rate 0.5 over 24 submits fires");
    assert_eq!(report.admission_shed, plan.fired(FaultSite::AdmissionAlloc));
    assert_eq!(report.admission_shed, report.rejected_full, "shed counts as QueueFull");
    assert_eq!(report.served, 24);
}

/// Worker-spawn failure is invisible to correctness: with every spawn
/// refused, `scope_run`'s helping submitter executes the pooled batch
/// chunks itself (bit-identical results), the engine counts each
/// shortfall, and the service report surfaces the count — reconciling
/// exactly with the plan's fires. The pool is driven via an explicit
/// thread request so the test does not depend on the host's core
/// count.
#[test]
fn spawn_shortfall_degrades_batch_to_helping_submitter() {
    let _g = chaos_guard();
    let (m, opts) = fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(2), &opts).unwrap();
    // serial ground truth before any chaos
    let expected: Vec<Vec<f64>> =
        (0..8u64).map(|k| engine.solve(&verify::rhs_for(&m, 400 + k).1).unwrap().x).collect();
    let plan = Arc::new(FaultPlan::new(0x5BA).with_rate(FaultSite::WorkerSpawn, 1.0));
    let cfg = ServiceConfig::default();

    let report = with_watchdog(120, || {
        fault::with_plan(&plan, || {
            let ((), report) = SolverService::run(ServiceEngine::Solver(&engine), &cfg, |svc| {
                // foreground batch work on the same engine the service
                // dispatches to — the pool refuses every spawn, the
                // helping submitter does the chunks
                let bs: Vec<Vec<f64>> = (0..8u64).map(|k| verify::rhs_for(&m, 400 + k).1).collect();
                let mr = engine
                    .solve_batch_with_threads(&bs, 4)
                    .expect("spawn shortfall must not fail the batch");
                for (r, want) in mr.reports.iter().zip(&expected) {
                    assert_eq!(&r.x, want, "helping-submitter batch stays bit-identical");
                }
                // and the service keeps serving normally alongside
                for (k, b) in bs.iter().enumerate() {
                    let x = svc.submit(b).unwrap().wait().unwrap();
                    assert_eq!(x, expected[k]);
                }
            })
            .unwrap();
            report
        })
    });
    assert_eq!(report.served, 8);
    assert!(plan.fired(FaultSite::WorkerSpawn) >= 1, "the batch probed the pool");
    assert_eq!(report.spawn_shortfalls, plan.fired(FaultSite::WorkerSpawn));
}

/// The sweep: 64 seeded fault plans × 8 concurrent clients × 6
/// requests of mixed shapes. Invariants, per seed:
///
/// 1. every ticket resolves — `Ok` bit-identical to a serial solve of
///    the same right-hand side, or a typed error;
/// 2. nothing deadlocks (one watchdog over the whole sweep);
/// 3. the final report reconciles with the plan: `admission_shed` and
///    `dispatcher_restarts` equal the fired counts, `poisoned_lanes`
///    never exceeds the corruption fires, and completions account for
///    every submitted request.
#[test]
fn chaos_sweep_64_seeds() {
    let _g = chaos_guard();
    let (m, opts) = fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(2), &opts).unwrap();
    const CLIENTS: u64 = 8;
    const PER_CLIENT: u64 = 6;
    // serial ground truth, shared by every seed
    let expected: Vec<Vec<f64>> = (0..CLIENTS * PER_CLIENT)
        .map(|k| engine.solve(&verify::rhs_for(&m, 2000 + k).1).unwrap().x)
        .collect();

    with_watchdog(600, || {
        for seed in 0..64u64 {
            let plan = Arc::new(
                FaultPlan::new(seed)
                    .with_rate(FaultSite::WorkerSpawn, 0.2)
                    .with_rate(FaultSite::WorkerTaskPanic, 0.01)
                    .with_rate(FaultSite::DispatcherPanic, 0.03)
                    .with_budget(FaultSite::DispatcherPanic, 3)
                    .with_rate(FaultSite::PanelSolve, 0.02)
                    .with_rate(FaultSite::AdmissionAlloc, 0.1)
                    .with_rate(FaultSite::RhsCorruptNonFinite, 0.05)
                    .with_budget(FaultSite::RhsCorruptNonFinite, 4),
            );
            let cfg = ServiceConfig {
                // every 4th seed exercises the pooled wide-panel tier
                max_lanes: if seed % 4 == 0 { 24 } else { 8 },
                max_linger: Duration::from_micros(200),
                scan_outputs: true,
                supervision_seed: seed,
                max_dispatcher_restarts: 64,
                ..ServiceConfig::default()
            };
            let report = fault::with_plan(&plan, || {
                let ((), report) =
                    SolverService::run_supervised(ServiceEngine::Solver(&engine), &cfg, |svc| {
                        std::thread::scope(|s| {
                            for c in 0..CLIENTS {
                                let expected = &expected;
                                let m = &m;
                                s.spawn(move || {
                                    let policy =
                                        RetryPolicy { seed: seed ^ c, ..RetryPolicy::default() };
                                    for j in 0..PER_CLIENT {
                                        let k = c * PER_CLIENT + j;
                                        let (_, b) = verify::rhs_for(m, 2000 + k);
                                        let sub = if j % 2 == 0 {
                                            svc.submit_with_retry(&b, &policy)
                                        } else {
                                            svc.submit(&b)
                                        };
                                        // typed rejections and typed completions are
                                        // both legal outcomes under chaos — the
                                        // invariant is "resolved, typed, no hang"
                                        if let Ok(Ok(x)) = sub.map(|t| t.wait()) {
                                            assert_eq!(
                                                x, expected[k as usize],
                                                "seed {seed} req {k}: Ok must be bit-identical"
                                            );
                                        }
                                    }
                                });
                            }
                        });
                    })
                    .unwrap();
                report
            });
            // reconciliation: the report must account for every accepted
            // request and agree with the plan about what fired
            assert_eq!(
                report.submitted,
                report.served + report.failed + report.shutdown_rejected,
                "seed {seed}: every accepted request resolved exactly once"
            );
            assert_eq!(
                report.admission_shed,
                plan.fired(FaultSite::AdmissionAlloc),
                "seed {seed}: shed reconciles"
            );
            assert_eq!(
                report.dispatcher_restarts,
                plan.fired(FaultSite::DispatcherPanic),
                "seed {seed}: every dispatcher panic was a supervised restart"
            );
            assert!(
                report.poisoned_lanes <= plan.fired(FaultSite::RhsCorruptNonFinite),
                "seed {seed}: only injected corruption poisons lanes"
            );
            assert_eq!(
                report.spawn_shortfalls,
                plan.fired(FaultSite::WorkerSpawn),
                "seed {seed}: every spawn fire was counted as a shortfall"
            );
        }
    });
}

// ---- fleet containment scenarios -----------------------------------

use sptrsv::fleet::{EngineFleet, FleetConfig, FleetError, TenantHealth};

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        machine: MachineConfig::dgx1(2),
        solve: SolveOptions {
            kind: SolverKind::ZeroCopy { per_gpu: 8 },
            verify: false,
            ..SolveOptions::default()
        },
        build_backoff: Duration::from_micros(50),
        quarantine_cooldown: Duration::from_millis(200),
        ..FleetConfig::default()
    }
}

fn fleet_tenants(n: usize) -> Vec<Arc<CscMatrix>> {
    (0..n as u64)
        .map(|t| Arc::new(gen::level_structured(&LevelSpec::new(600, 20, 2500, 90 + t))))
        .collect()
}

fn serial_x(m: &CscMatrix, cfg: &FleetConfig, b: &[f64]) -> Vec<f64> {
    SolverEngine::build(m, cfg.machine.clone(), &cfg.solve).unwrap().solve(b).unwrap().x
}

/// Acceptance scenario: every build attempt of one tenant panics
/// (injected [`FaultSite::EngineBuild`], budget = the attempt cap).
/// The victim's ticket resolves with typed `BuildFailed`, the
/// fingerprint is quarantined (typed `Quarantined` with the remaining
/// cooldown), the other tenants serve bit-identically throughout, and
/// after the cooldown one clean probe re-admits the factor and clears
/// the quarantine.
#[test]
fn engine_build_faults_quarantine_one_tenant_and_spare_the_rest() {
    let _g = chaos_guard();
    let cfg = fleet_cfg();
    let ms = fleet_tenants(3);
    let plan = Arc::new(
        FaultPlan::new(0xB11D)
            .with_rate(FaultSite::EngineBuild, 1.0)
            .with_budget(FaultSite::EngineBuild, u64::from(cfg.build_attempts)),
    );
    with_watchdog(120, || {
        fault::with_plan(&plan, || {
            let fleet = EngineFleet::new(cfg.clone()).unwrap();
            let fps: Vec<_> = ms.iter().map(|m| fleet.register(Arc::clone(m))).collect();
            // victim first: its build consumes the whole fault budget
            let (_, b0) = verify::rhs_for(&ms[0], 1);
            match fleet.submit(fps[0], &b0).unwrap().wait() {
                Err(FleetError::BuildFailed { attempts }) => {
                    assert_eq!(attempts, cfg.build_attempts)
                }
                other => panic!("expected BuildFailed, got {other:?}"),
            }
            // quarantined now: typed rejection, no build attempts burned
            match fleet.submit(fps[0], &b0) {
                Err(FleetError::Quarantined { failures, retry_in }) => {
                    assert_eq!(failures, 1);
                    assert!(retry_in <= cfg.quarantine_cooldown);
                }
                other => panic!("expected Quarantined, got {other:?}"),
            }
            assert!(
                fleet
                    .health()
                    .iter()
                    .any(|(fp, h)| *fp == fps[0] && matches!(h, TenantHealth::Quarantined { .. })),
                "health must surface the quarantined fingerprint"
            );
            // the other tenants are untouched: bit-identical service
            for (t, m) in ms.iter().enumerate().skip(1) {
                let (_, b) = verify::rhs_for(m, 10 + t as u64);
                let x = fleet.submit(fps[t], &b).unwrap().wait().unwrap();
                assert_eq!(x, serial_x(m, &cfg, &b), "healthy tenant {t} diverged");
            }
            // cooldown expiry: the re-admission probe builds cleanly
            // (the fault budget is spent) and clears the quarantine
            std::thread::sleep(cfg.quarantine_cooldown + Duration::from_millis(50));
            let x = fleet.submit(fps[0], &b0).unwrap().wait().expect("re-admission probe serves");
            assert_eq!(x, serial_x(&ms[0], &cfg, &b0));
            let report = fleet.report();
            assert_eq!(report.builds_failed, 1);
            assert_eq!(report.build_retries, u64::from(cfg.build_attempts - 1));
            assert_eq!(report.quarantine_events, 1);
            assert!(report.quarantine_rejections >= 1);
            assert_eq!(report.quarantined_now, 0, "a clean rebuild clears quarantine");
            assert!(report.cache_bytes_high_water <= report.cache_budget_bytes);
        })
    });
    assert_eq!(plan.fired(FaultSite::EngineBuild), u64::from(cfg.build_attempts));
}

/// Acceptance scenario: one tenant's dispatcher panics past its
/// restart budget and aborts — the blast radius ends at that tenant's
/// bulkhead. Every victim ticket resolves with a typed error (never
/// hangs, enforced by the watchdog), the fingerprint quarantines, and
/// the other tenants' results stay bit-identical throughout.
#[test]
fn tenant_dispatcher_abort_is_contained_to_its_bulkhead() {
    let _g = chaos_guard();
    let mut cfg = fleet_cfg();
    cfg.service.max_dispatcher_restarts = 1;
    let ms = fleet_tenants(3);
    let plan = Arc::new(
        FaultPlan::new(0xAB0)
            .with_rate(FaultSite::DispatcherPanic, 1.0)
            .with_budget(FaultSite::DispatcherPanic, 2),
    );
    with_watchdog(120, || {
        let fleet = EngineFleet::new(cfg.clone()).unwrap();
        let fps: Vec<_> = ms.iter().map(|m| fleet.register(Arc::clone(m))).collect();
        // warm every tenant before arming the plan, so only the victim
        // (the sole tenant given traffic under the plan) can consume
        // the panic budget
        for (t, m) in ms.iter().enumerate() {
            let (_, b) = verify::rhs_for(m, 20 + t as u64);
            fleet.submit(fps[t], &b).unwrap().wait().unwrap();
        }
        fault::with_plan(&plan, || {
            let (_, b0) = verify::rhs_for(&ms[0], 30);
            let expected0 = serial_x(&ms[0], &cfg, &b0);
            let mut typed_failures = 0u64;
            let mut quarantined = false;
            for _ in 0..32 {
                match fleet.submit(fps[0], &b0) {
                    Ok(t) => match t.wait() {
                        // possible only once the budget is spent (or a
                        // post-cooldown rebuild) — must still be exact
                        Ok(x) => assert_eq!(x, expected0),
                        Err(FleetError::Serve(ServeError::Retryable { .. })) => typed_failures += 1,
                        Err(FleetError::ShuttingDown) => typed_failures += 1,
                        Err(e) => panic!("unexpected victim error: {e}"),
                    },
                    Err(FleetError::Quarantined { .. }) => {
                        quarantined = true;
                        break;
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            assert!(typed_failures >= 2, "both injected panics must fail tickets, typed");
            assert!(quarantined, "the aborted tenant must enter quarantine");
            // the other tenants keep serving bit-identically through it
            for (t, m) in ms.iter().enumerate().skip(1) {
                let (_, b) = verify::rhs_for(m, 40 + t as u64);
                let x = fleet.submit(fps[t], &b).unwrap().wait().unwrap();
                assert_eq!(x, serial_x(m, &cfg, &b), "bulkhead leaked into tenant {t}");
            }
            let report = fleet.report();
            assert_eq!(report.tenant_aborts, 1);
            assert_eq!(report.quarantine_events, 1);
            assert!(report.cache_bytes_high_water <= report.cache_budget_bytes);
        });
        assert_eq!(plan.fired(FaultSite::DispatcherPanic), 2);
    });
}

/// Targeted [`FaultSite::CacheAdmit`]: injected allocation pressure at
/// the admission gate sheds the cold submit with a typed `CacheFull`,
/// charges nothing, and the retry (budget spent) admits and serves.
#[test]
fn cache_admit_fault_sheds_cold_admission_typed() {
    let _g = chaos_guard();
    let cfg = fleet_cfg();
    let ms = fleet_tenants(1);
    let plan = Arc::new(
        FaultPlan::new(0xCA0)
            .with_rate(FaultSite::CacheAdmit, 1.0)
            .with_budget(FaultSite::CacheAdmit, 1),
    );
    with_watchdog(60, || {
        fault::with_plan(&plan, || {
            let fleet = EngineFleet::new(cfg.clone()).unwrap();
            let fp = fleet.register(Arc::clone(&ms[0]));
            let (_, b) = verify::rhs_for(&ms[0], 5);
            match fleet.submit(fp, &b) {
                Err(FleetError::CacheFull { .. }) => {}
                other => panic!("expected injected CacheFull, got {other:?}"),
            }
            assert_eq!(fleet.report().cache_bytes, 0, "a shed admission must charge nothing");
            let x = fleet.submit(fp, &b).unwrap().wait().unwrap();
            assert_eq!(x, serial_x(&ms[0], &cfg, &b));
            assert_eq!(fleet.report().cache_admit_shed, 1);
        })
    });
    assert_eq!(plan.fired(FaultSite::CacheAdmit), 1);
}

/// The fleet acceptance sweep: 16 seeds of mixed build/admission
/// faults aimed at one victim tenant (the healthy tenants are warmed
/// before the plan arms, so only victim builds probe the armed sites)
/// while the healthy tenants take concurrent traffic. Per seed: every
/// ticket resolves (watchdog), healthy tenants stay bit-identical to
/// serial `solve()`, victim outcomes are exact solutions or typed
/// errors, cache live bytes never cross the budget, counters
/// reconcile, and no accepted request leaks.
#[test]
fn fleet_chaos_sweep_multi_tenant() {
    let _g = chaos_guard();
    let mut cfg = fleet_cfg();
    cfg.quarantine_cooldown = Duration::from_millis(50);
    let ms = fleet_tenants(3);
    let expected: Vec<Vec<Vec<f64>>> = ms
        .iter()
        .enumerate()
        .map(|(t, m)| {
            let serial = SolverEngine::build(m, cfg.machine.clone(), &cfg.solve).unwrap();
            (0..6u64)
                .map(|k| serial.solve(&verify::rhs_for(m, 100 * t as u64 + k).1).unwrap().x)
                .collect()
        })
        .collect();

    for seed in 0..16u64 {
        let plan = Arc::new(
            FaultPlan::new(0xF1EE7 ^ seed)
                .with_rate(FaultSite::EngineBuild, 0.6)
                .with_budget(FaultSite::EngineBuild, 4)
                .with_rate(FaultSite::CacheAdmit, 0.3)
                .with_budget(FaultSite::CacheAdmit, 2),
        );
        with_watchdog(120, || {
            let fleet = EngineFleet::new(cfg.clone()).unwrap();
            let fps: Vec<_> = ms.iter().map(|m| fleet.register(Arc::clone(m))).collect();
            // healthy tenants warm up fault-free
            for t in 1..3usize {
                let (_, b) = verify::rhs_for(&ms[t], 100 * t as u64);
                let x = fleet.submit(fps[t], &b).unwrap().wait().unwrap();
                assert_eq!(x, expected[t][0]);
            }
            fault::with_plan(&plan, || {
                std::thread::scope(|s| {
                    {
                        let (fleet, ms, fps, expected) = (&fleet, &ms, &fps, &expected);
                        s.spawn(move || {
                            for k in 0..6u64 {
                                let (_, b) = verify::rhs_for(&ms[0], k);
                                match fleet.submit(fps[0], &b) {
                                    Ok(t) => match t.wait() {
                                        Ok(x) => assert_eq!(
                                            x, expected[0][k as usize],
                                            "seed {seed}: victim solved wrong"
                                        ),
                                        Err(_typed) => {}
                                    },
                                    Err(_typed) => {}
                                }
                                // straddle the quarantine cooldown so
                                // re-admission probes happen mid-sweep
                                std::thread::sleep(Duration::from_millis(20));
                            }
                        });
                    }
                    for t in 1..3usize {
                        let (fleet, ms, fps, expected) = (&fleet, &ms, &fps, &expected);
                        s.spawn(move || {
                            for k in 1..6u64 {
                                let (_, b) = verify::rhs_for(&ms[t], 100 * t as u64 + k);
                                let x = fleet
                                    .submit(fps[t], &b)
                                    .unwrap()
                                    .wait()
                                    .unwrap_or_else(|e| panic!("healthy tenant {t}: {e}"));
                                assert_eq!(
                                    x, expected[t][k as usize],
                                    "seed {seed}: healthy tenant {t} diverged under chaos"
                                );
                            }
                        });
                    }
                });
                let report = fleet.report();
                assert!(
                    report.cache_bytes_high_water <= report.cache_budget_bytes,
                    "seed {seed}: byte budget violated: {report:?}"
                );
                assert_eq!(
                    report.cache_admit_shed,
                    plan.fired(FaultSite::CacheAdmit),
                    "seed {seed}: shed counter must reconcile with the plan"
                );
                assert_eq!(
                    report.submitted,
                    report.served + report.failed,
                    "seed {seed}: an accepted request leaked: {report:?}"
                );
            });
        });
    }
}

/// S1 regression: with admission shedding firing on every submit, the
/// client retry loop gives up with the typed exhaustion error carrying
/// exactly the policy's attempt cap — it must neither spin forever nor
/// surface a bare `QueueFull`.
#[test]
fn retry_exhaustion_is_typed_with_attempt_count() {
    let _g = chaos_guard();
    let (m, opts) = fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(2), &opts).unwrap();
    let plan = Arc::new(FaultPlan::new(0xE0).with_rate(FaultSite::AdmissionAlloc, 1.0));
    let cfg = ServiceConfig::default();
    let policy = RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_micros(10),
        ..RetryPolicy::default()
    };
    with_watchdog(60, || {
        fault::with_plan(&plan, || {
            let ((), _report) = SolverService::run(ServiceEngine::Solver(&engine), &cfg, |svc| {
                let (_, b) = verify::rhs_for(&m, 1);
                match svc.submit_with_retry(&b, &policy) {
                    Err(ServeError::RetryExhausted { attempts }) => {
                        assert_eq!(attempts, policy.max_attempts)
                    }
                    Ok(_) => panic!("expected RetryExhausted, got a ticket"),
                    Err(e) => panic!("expected RetryExhausted, got {e}"),
                }
            })
            .unwrap();
        })
    });
    assert_eq!(plan.fired(FaultSite::AdmissionAlloc), u64::from(policy.max_attempts));
}

/// Targeted [`FaultSite::ValueRefresh`]: an injected panic mid-refresh
/// (after validation, before the first value write) surfaces as a
/// typed `Retryable` to the refresher only — the old value epoch keeps
/// serving bit-identically, never torn — and once the fault budget is
/// spent the retried refresh commits and the new epoch serves.
#[test]
fn value_refresh_fault_is_typed_and_never_tears() {
    let _g = chaos_guard();
    let (m, opts) = fixture();
    let mut m2 = m.clone();
    for (i, v) in m2.values_mut().iter_mut().enumerate() {
        *v *= 1.0 + ((i % 7) as f64) * 0.01;
    }
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(2), &opts).unwrap();
    let cold2 = SolverEngine::build(&m2, MachineConfig::dgx1(2), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 61);
    let old_expect = engine.solve(&b).unwrap().x;
    let new_expect = cold2.solve(&b).unwrap().x;
    let plan = Arc::new(
        FaultPlan::new(0x0EF)
            .with_rate(FaultSite::ValueRefresh, 1.0)
            .with_budget(FaultSite::ValueRefresh, 1),
    );
    let report = with_watchdog(120, || {
        fault::with_plan(&plan, || {
            let ((), report) = SolverService::run(
                ServiceEngine::Solver(&engine),
                &ServiceConfig::default(),
                |svc| {
                    // first attempt rides the injected panic: typed,
                    // contained to the refresher
                    match svc.refresh_solver(&m2) {
                        Err(ServeError::Retryable { .. }) => {}
                        other => {
                            panic!("expected Retryable from the injected fault, got {other:?}")
                        }
                    }
                    // the old epoch is intact and serving — never torn
                    assert_eq!(engine.value_epoch(), 0);
                    assert_eq!(svc.submit(&b).unwrap().wait().unwrap(), old_expect);
                    // budget spent: the retry commits, the new epoch serves
                    let rep = svc.refresh_solver(&m2).unwrap();
                    assert_eq!(rep.value_epoch, 1);
                    assert_eq!(svc.submit(&b).unwrap().wait().unwrap(), new_expect);
                },
            )
            .unwrap();
            report
        })
    });
    assert_eq!(plan.fired(FaultSite::ValueRefresh), 1);
    assert_eq!(report.refresh_failures, 1);
    assert_eq!(report.value_refreshes, 1);
    assert_eq!(report.failed, 0, "a refresh fault must not fail any ticket");
}

/// The same fault through the fleet: a live tenant's value refresh
/// rides the mailbox onto its bulkhead thread, the injected panic
/// comes back as a typed `Serve(Retryable)`, the tenant keeps serving
/// the old epoch bit-identically, and the post-budget retry swaps the
/// values in place without a rebuild.
#[test]
fn fleet_value_refresh_fault_leaves_tenant_serving_old_epoch() {
    let _g = chaos_guard();
    let cfg = fleet_cfg();
    let ms = fleet_tenants(1);
    let m2 = {
        let mut t = (*ms[0]).clone();
        for (i, v) in t.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + ((i % 5) as f64) * 0.002;
        }
        Arc::new(t)
    };
    let plan = Arc::new(
        FaultPlan::new(0xEF2)
            .with_rate(FaultSite::ValueRefresh, 1.0)
            .with_budget(FaultSite::ValueRefresh, 1),
    );
    with_watchdog(120, || {
        let fleet = EngineFleet::new(cfg.clone()).unwrap();
        let fp = fleet.register(Arc::clone(&ms[0]));
        // warm the tenant before arming the plan, so the build and the
        // first solve run fault-free
        let (_, b) = verify::rhs_for(&ms[0], 7);
        let old_x = fleet.submit(fp, &b).unwrap().wait().unwrap();
        fault::with_plan(&plan, || {
            match fleet.refresh_tenant(fp, Arc::clone(&m2)) {
                Err(FleetError::Serve(ServeError::Retryable { .. })) => {}
                other => panic!("expected typed Retryable through the fleet, got {other:?}"),
            }
            assert_eq!(fleet.tenant_value_epoch(fp), Some(0), "old epoch stays current");
            assert_eq!(
                fleet.submit(fp, &b).unwrap().wait().unwrap(),
                old_x,
                "the tenant keeps serving old values bit-identically"
            );
            // budget spent: the retried refresh commits in place
            let rep = fleet.refresh_tenant(fp, Arc::clone(&m2)).unwrap();
            assert_eq!(rep.value_epoch, 1);
            assert_eq!(fleet.tenant_value_epoch(fp), Some(1));
            let x2 = fleet.submit(fp, &b).unwrap().wait().unwrap();
            assert_eq!(x2, serial_x(&m2, &cfg, &b), "the new epoch serves the new values");
            let report = fleet.report();
            assert_eq!(report.refresh_failures, 1);
            assert_eq!(report.value_refreshes, 1);
            assert_eq!(report.builds_ok, 1, "a refresh must never trigger a rebuild");
        });
        assert_eq!(plan.fired(FaultSite::ValueRefresh), 1);
    });
}
