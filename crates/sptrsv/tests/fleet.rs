//! Behavior tests for the multi-tenant engine fleet (`sptrsv::fleet`):
//! fingerprint routing, multi-tenant bit-identity against serial
//! `solve()`, the byte-bounded LRU factor cache (eviction order,
//! pinning, typed `CacheFull`), per-tenant admission budgets, and the
//! health / report surfaces. The fault-injected containment sweeps
//! live in `tests/chaos.rs`.

use std::sync::Arc;
use std::time::Duration;

use mgpu_sim::MachineConfig;
use sparsemat::gen::{self, LevelSpec};
use sparsemat::{CscMatrix, FactorFingerprint};
use sptrsv::fleet::{EngineFleet, FleetConfig, FleetError, TenantHealth};
use sptrsv::{verify, SolveOptions, SolverEngine, SolverKind};

fn tenant_matrix(seed: u64) -> Arc<CscMatrix> {
    Arc::new(gen::level_structured(&LevelSpec::new(600, 20, 2500, seed)))
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        machine: MachineConfig::dgx1(2),
        solve: SolveOptions {
            kind: SolverKind::ZeroCopy { per_gpu: 8 },
            verify: false,
            ..SolveOptions::default()
        },
        ..FleetConfig::default()
    }
}

/// Serial ground truth for one tenant's right-hand side.
fn serial_solution(m: &CscMatrix, cfg: &FleetConfig, b: &[f64]) -> Vec<f64> {
    let engine = SolverEngine::build(m, cfg.machine.clone(), &cfg.solve).unwrap();
    engine.solve(b).unwrap().x
}

#[test]
fn unknown_fingerprint_is_a_typed_error() {
    let fleet = EngineFleet::new(fleet_config()).unwrap();
    let bogus = FactorFingerprint { structural: 0xDEAD, values: 0xBEEF, epoch: 0 };
    match fleet.submit(bogus, &[1.0; 8]) {
        Err(FleetError::UnknownFactor { fingerprint }) => assert_eq!(fingerprint, bogus),
        other => panic!("expected UnknownFactor, got {other:?}"),
    }
}

#[test]
fn wrong_dimension_is_a_typed_error_cold_and_warm() {
    let cfg = fleet_config();
    let fleet = EngineFleet::new(cfg).unwrap();
    let m = tenant_matrix(3);
    let fp = fleet.register(Arc::clone(&m));
    // cold: no engine exists yet
    assert!(matches!(
        fleet.submit(fp, &[1.0; 7]),
        Err(FleetError::Serve(sptrsv::ServeError::Solve(
            sptrsv::SolveError::DimensionMismatch { .. }
        )))
    ));
    // warm the tenant, then hit the warm-path check
    let (_, b) = verify::rhs_for(&m, 1);
    fleet.submit(fp, &b).unwrap().wait().unwrap();
    assert!(matches!(
        fleet.submit(fp, &[1.0; 7]),
        Err(FleetError::Serve(sptrsv::ServeError::Solve(
            sptrsv::SolveError::DimensionMismatch { .. }
        )))
    ));
}

/// The core promise: three tenants with different factors, interleaved
/// submissions from several client threads, every result bit-identical
/// to a serial `SolverEngine::solve` of the same (factor, rhs) pair.
#[test]
fn multi_tenant_results_bit_identical_to_serial() {
    let cfg = fleet_config();
    let fleet = EngineFleet::new(cfg.clone()).unwrap();
    let matrices: Vec<Arc<CscMatrix>> = (0..3).map(|t| tenant_matrix(10 + t)).collect();
    let fps: Vec<FactorFingerprint> =
        matrices.iter().map(|m| fleet.register(Arc::clone(m))).collect();

    const PER_TENANT: u64 = 6;
    let expected: Vec<Vec<Vec<f64>>> = matrices
        .iter()
        .enumerate()
        .map(|(t, m)| {
            (0..PER_TENANT)
                .map(|k| {
                    let (_, b) = verify::rhs_for(m, 100 * t as u64 + k);
                    serial_solution(m, &cfg, &b)
                })
                .collect()
        })
        .collect();

    std::thread::scope(|s| {
        for (t, m) in matrices.iter().enumerate() {
            let fleet = &fleet;
            let fps = &fps;
            let expected = &expected[t];
            s.spawn(move || {
                for k in 0..PER_TENANT {
                    let (_, b) = verify::rhs_for(m, 100 * t as u64 + k);
                    let x = fleet.submit(fps[t], &b).unwrap().wait().unwrap();
                    assert_eq!(x, expected[k as usize], "tenant {t} rhs {k} diverged");
                }
            });
        }
    });

    let report = fleet.report();
    assert_eq!(report.submitted, 3 * PER_TENANT);
    assert_eq!(report.served, 3 * PER_TENANT);
    assert_eq!(report.failed, 0);
    assert_eq!(report.builds_ok, 3);
    assert_eq!(report.tenants_live, 3);
    assert!(report.cache_bytes_high_water <= report.cache_budget_bytes);
}

/// Squeezing the budget to ~one engine forces the LRU to cycle: each
/// new tenant evicts the coldest idle one, results stay bit-identical,
/// and live bytes never cross the budget.
#[test]
fn lru_evicts_coldest_idle_engine_under_a_tight_budget() {
    let mut cfg = fleet_config();
    let matrices: Vec<Arc<CscMatrix>> = (0..3).map(|t| tenant_matrix(20 + t)).collect();
    // budget: room for one engine (admission estimate AND real
    // footprint), never for two — every tenant switch must evict.
    // estimate mirrors the fleet's admission formula; actual is the
    // real post-recharge charge.
    let host = ((matrices[0].n() + 1) * std::mem::size_of::<usize>()
        + matrices[0].nnz() * (std::mem::size_of::<u32>() + std::mem::size_of::<f64>()))
        as u64;
    let estimate = host * 4 + matrices[0].n() as u64 * 8 * (3 * 8 + 2);
    let probe = SolverEngine::build(&matrices[0], cfg.machine.clone(), &cfg.solve).unwrap();
    let actual = host + probe.footprint_bytes();
    cfg.cache_budget_bytes = estimate.max(actual) + estimate.min(actual) / 2;
    let fleet = EngineFleet::new(cfg.clone()).unwrap();
    let fps: Vec<FactorFingerprint> =
        matrices.iter().map(|m| fleet.register(Arc::clone(m))).collect();

    for round in 0..2 {
        for (t, m) in matrices.iter().enumerate() {
            let (_, b) = verify::rhs_for(m, 500 + t as u64);
            let x = fleet.submit(fps[t], &b).unwrap().wait().unwrap();
            assert_eq!(x, serial_solution(m, &cfg, &b), "round {round} tenant {t}");
            let report = fleet.report();
            assert!(report.cache_bytes <= report.cache_budget_bytes);
            assert!(report.cache_bytes_high_water <= report.cache_budget_bytes);
        }
    }
    let report = fleet.report();
    // 6 cold admissions total (every switch rebuilds), so at least 5
    // evictions cycled the single-engine cache
    assert_eq!(report.builds_ok, 6);
    assert!(report.evictions >= 5, "expected the LRU to cycle, got {report:?}");
    assert_eq!(report.tenants_live, 1);
}

/// A budget smaller than one engine can never admit anything: typed
/// `CacheFull`, not a hang or a budget violation.
#[test]
fn budget_smaller_than_one_engine_is_cache_full() {
    let mut cfg = fleet_config();
    cfg.cache_budget_bytes = 1024;
    let fleet = EngineFleet::new(cfg).unwrap();
    let m = tenant_matrix(30);
    let fp = fleet.register(Arc::clone(&m));
    let (_, b) = verify::rhs_for(&m, 1);
    match fleet.submit(fp, &b) {
        Err(FleetError::CacheFull { needed_bytes, budget_bytes }) => {
            assert_eq!(budget_bytes, 1024);
            assert!(needed_bytes > budget_bytes);
        }
        other => panic!("expected CacheFull, got {other:?}"),
    }
    assert_eq!(fleet.report().cache_bytes, 0);
}

/// Per-tenant admission budgets isolate a flooding client: the flooded
/// tenant sheds with `TenantQueueFull` while a second tenant keeps
/// serving bit-identically.
#[test]
fn tenant_budget_sheds_without_touching_other_tenants() {
    let mut cfg = fleet_config();
    cfg.max_tenant_requests = 1;
    let fleet = EngineFleet::new(cfg.clone()).unwrap();
    let flooded = tenant_matrix(40);
    let healthy = tenant_matrix(41);
    let fp_flood = fleet.register(Arc::clone(&flooded));
    let fp_ok = fleet.register(Arc::clone(&healthy));

    let (_, bf) = verify::rhs_for(&flooded, 7);
    // warm the flooded tenant first so the budget applies to a live queue
    fleet.submit(fp_flood, &bf).unwrap().wait().unwrap();

    // saturate: with a budget of one, burst submits must shed
    let mut shed = 0u64;
    let mut tickets = Vec::new();
    for _ in 0..64 {
        match fleet.submit(fp_flood, &bf) {
            Ok(t) => tickets.push(t),
            Err(FleetError::TenantQueueFull { .. }) => shed += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(shed > 0, "a 1-request budget must shed a 64-deep burst");
    assert_eq!(fleet.report().tenant_shed, shed);

    // the other tenant is untouched by the flood
    let (_, bh) = verify::rhs_for(&healthy, 8);
    let x = fleet.submit(fp_ok, &bh).unwrap().wait().unwrap();
    assert_eq!(x, serial_solution(&healthy, &cfg, &bh));

    for t in tickets {
        t.wait().unwrap();
    }
}

/// Ticket surface: `wait_timeout(ZERO)` polls without blocking and
/// returns the live ticket; waiting afterwards yields the bit-exact
/// result. After shutdown, submits are typed `ShuttingDown`.
#[test]
fn ticket_polling_and_shutdown_semantics() {
    let cfg = fleet_config();
    let fleet = EngineFleet::new(cfg.clone()).unwrap();
    let m = tenant_matrix(50);
    let fp = fleet.register(Arc::clone(&m));
    let (_, b) = verify::rhs_for(&m, 3);

    let mut ticket = fleet.submit(fp, &b).unwrap();
    let x = loop {
        match ticket.wait_timeout(Duration::ZERO) {
            Ok(r) => break r.unwrap(),
            Err(t) => {
                ticket = t;
                std::thread::yield_now();
            }
        }
    };
    assert_eq!(x, serial_solution(&m, &cfg, &b));

    fleet.shutdown();
    assert!(matches!(fleet.submit(fp, &b), Err(FleetError::ShuttingDown)));
    let report = fleet.report();
    assert_eq!(report.tenants_live, 0);
    assert_eq!(report.cache_bytes, 0, "shutdown must release every charged byte");
}

/// Health surface: a building tenant reports `Building`, a serving one
/// `Ok`, and the listing is sorted by fingerprint.
#[test]
fn health_reports_building_then_ok_sorted() {
    let cfg = fleet_config();
    let fleet = EngineFleet::new(cfg).unwrap();
    let ms: Vec<Arc<CscMatrix>> = (0..2).map(|t| tenant_matrix(60 + t)).collect();
    let mut fps: Vec<FactorFingerprint> =
        ms.iter().map(|m| fleet.register(Arc::clone(m))).collect();
    let tickets: Vec<_> = ms
        .iter()
        .zip(&fps)
        .map(|(m, fp)| fleet.submit(*fp, &verify::rhs_for(m, 9).1).unwrap())
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let health = fleet.health();
    assert_eq!(health.len(), 2);
    fps.sort();
    for ((fp, h), want) in health.iter().zip(&fps) {
        assert_eq!(fp, want, "health listing must be fingerprint-sorted");
        assert!(
            matches!(h, TenantHealth::Ok | TenantHealth::Degraded { .. }),
            "served tenant should be live, got {h:?}"
        );
    }
}

/// Same pattern, new values.
fn perturbed(m: &CscMatrix) -> Arc<CscMatrix> {
    let mut m2 = m.clone();
    for (i, v) in m2.values_mut().iter_mut().enumerate() {
        *v *= 1.0 + ((i % 7) as f64) * 0.01;
    }
    Arc::new(m2)
}

/// The in-place tentpole at fleet level: refreshing a live tenant
/// swaps values on its warm engine — no second tenant, no rebuild —
/// and subsequent results are bit-identical to a serial solve of the
/// new values under the **same** routing key.
#[test]
fn refresh_tenant_live_swaps_values_without_a_rebuild() {
    let cfg = fleet_config();
    let fleet = EngineFleet::new(cfg.clone()).unwrap();
    let m = tenant_matrix(80);
    let m2 = perturbed(&m);
    let fp = fleet.register(Arc::clone(&m));
    let (_, b) = verify::rhs_for(&m, 6);
    let x_old = fleet.submit(fp, &b).unwrap().wait().unwrap();
    assert_eq!(x_old, serial_solution(&m, &cfg, &b));
    assert_eq!(fleet.tenant_value_epoch(fp), Some(0));

    let report = fleet.refresh_tenant(fp, Arc::clone(&m2)).unwrap();
    assert_eq!(report.value_epoch, 1);
    assert!(report.audit.is_clean());
    assert_eq!(fleet.tenant_value_epoch(fp), Some(1));

    let x_new = fleet.submit(fp, &b).unwrap().wait().unwrap();
    assert_eq!(x_new, serial_solution(&m2, &cfg, &b), "refreshed tenant must serve new values");
    assert_ne!(x_new, x_old);

    let r = fleet.report();
    assert_eq!(r.builds_ok, 1, "a value refresh must not rebuild the engine");
    assert_eq!(r.value_refreshes, 1);
    assert_eq!(r.refresh_failures, 0);
    assert_eq!(r.tenants_live, 1, "still one tenant — refresh must not spawn a second");
    assert!(r.cache_bytes <= r.cache_budget_bytes);
}

/// Refresh rejections are typed and harmless: unknown fingerprints,
/// structure drift and poisoned values all leave the tenant serving
/// the old epoch bit-identically.
#[test]
fn refresh_tenant_rejections_are_typed_and_leave_old_values_serving() {
    let cfg = fleet_config();
    let fleet = EngineFleet::new(cfg.clone()).unwrap();
    let m = tenant_matrix(90);
    let fp = fleet.register(Arc::clone(&m));
    let (_, b) = verify::rhs_for(&m, 2);
    let x_old = fleet.submit(fp, &b).unwrap().wait().unwrap();

    let bogus = FactorFingerprint { structural: 1, values: 2, epoch: 3 };
    assert!(matches!(
        fleet.refresh_tenant(bogus, Arc::clone(&m)),
        Err(FleetError::UnknownFactor { .. })
    ));

    // different sparsity pattern, same dimension: typed drift rejection
    let drifted = Arc::new(gen::banded_lower(m.n(), 5, 3.0, 90));
    assert!(matches!(
        fleet.refresh_tenant(fp, drifted),
        Err(FleetError::Serve(sptrsv::ServeError::Solve(
            sptrsv::SolveError::StructureMismatch { .. }
        )))
    ));

    // same pattern, poisoned values: the audit rejects before mutation
    let mut poisoned = (*m).clone();
    let mid = poisoned.nnz() / 2;
    poisoned.values_mut()[mid] = f64::NAN;
    assert!(matches!(
        fleet.refresh_tenant(fp, Arc::new(poisoned)),
        Err(FleetError::Serve(sptrsv::ServeError::Solve(sptrsv::SolveError::Matrix(_))))
    ));

    assert_eq!(fleet.tenant_value_epoch(fp), Some(0), "no rejected refresh may bump the epoch");
    assert_eq!(fleet.submit(fp, &b).unwrap().wait().unwrap(), x_old);
    let r = fleet.report();
    assert_eq!(r.value_refreshes, 0);
    assert_eq!(r.refresh_failures, 2, "drift + poison; the unknown fp never reached a tenant");
}

/// A registered but non-resident fingerprint refreshes *at rest*: the
/// stored factor is swapped after the same validation, and the next
/// cold build serves the new values.
#[test]
fn refresh_tenant_at_rest_updates_the_stored_factor() {
    let cfg = fleet_config();
    let fleet = EngineFleet::new(cfg.clone()).unwrap();
    let m = tenant_matrix(95);
    let m2 = perturbed(&m);
    let fp = fleet.register(Arc::clone(&m));

    let report = fleet.refresh_tenant(fp, Arc::clone(&m2)).unwrap();
    assert_eq!(report.value_epoch, 0, "no live engine, so no epoch to bump");
    assert_eq!(fleet.tenant_value_epoch(fp), None);

    let (_, b) = verify::rhs_for(&m, 4);
    let x = fleet.submit(fp, &b).unwrap().wait().unwrap();
    assert_eq!(x, serial_solution(&m2, &cfg, &b), "cold build must use the refreshed values");
    let r = fleet.report();
    assert_eq!(r.value_refreshes, 1);
    assert_eq!(r.builds_ok, 1);
}

/// Epoch registration: the same structure at two value epochs routes
/// to two distinct tenants with distinct results.
#[test]
fn value_epochs_are_distinct_tenants() {
    let cfg = fleet_config();
    let fleet = EngineFleet::new(cfg.clone()).unwrap();
    let m0 = tenant_matrix(70);
    // same structure, scaled values: a numeric refresh
    let mut m1 = (*m0).clone();
    for v in m1.values_mut() {
        *v *= 2.0;
    }
    let m1 = Arc::new(m1);
    let fp0 = fleet.register_epoch(Arc::clone(&m0), 0);
    let fp1 = fleet.register_epoch(Arc::clone(&m1), 1);
    assert_ne!(fp0, fp1);
    assert_eq!(fp0.structural, fp1.structural);

    let (_, b) = verify::rhs_for(&m0, 4);
    let x0 = fleet.submit(fp0, &b).unwrap().wait().unwrap();
    let x1 = fleet.submit(fp1, &b).unwrap().wait().unwrap();
    assert_eq!(x0, serial_solution(&m0, &cfg, &b));
    assert_eq!(x1, serial_solution(&m1, &cfg, &b));
    assert_ne!(x0, x1, "different value epochs must solve differently");
    assert_eq!(fleet.report().tenants_live, 2);
}
