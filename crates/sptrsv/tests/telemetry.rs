//! Armed-telemetry integration tests: ring wraparound semantics, the
//! span/schedule reconciliation contract, and result bit-identity
//! under tracing.
//!
//! The telemetry sink is process-global (one enable switch, one metric
//! registry, one ring per thread), so these tests live in their own
//! binary and serialize on a lock — the library's own unit tests never
//! arm the sink, and nothing here runs concurrently with itself.

use mgpu_sim::MachineConfig;
use sparsemat::corpus;
use sptrsv::telemetry::{self, Kind, Site, RING_CAPACITY};
use sptrsv::{verify, SolveOptions, SolveWorkspace, SolverEngine, SolverKind};
use std::sync::{Mutex, PoisonError};

/// Serializes armed-telemetry tests; each test resets the sink while
/// holding this and disarms it before releasing.
static SINK: Mutex<()> = Mutex::new(());

fn enters(snap: &telemetry::Snapshot, site: Site) -> Vec<telemetry::EventRecord> {
    snap.events.iter().filter(|e| e.kind == Kind::SpanEnter && e.site == site).copied().collect()
}

fn exits(snap: &telemetry::Snapshot, site: Site) -> usize {
    snap.events.iter().filter(|e| e.kind == Kind::SpanExit && e.site == site).count()
}

/// Overflowing a ring keeps exactly the newest `RING_CAPACITY` events,
/// in recording order, and accounts for every older one as dropped.
#[test]
fn ring_wraparound_keeps_the_newest_events_in_order() {
    let _g = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    telemetry::set_enabled(true);
    telemetry::reset();

    let overflow = 1000u64;
    let total = RING_CAPACITY as u64 + overflow;
    for i in 0..total {
        telemetry::instant(Site::ServeFlush, i);
    }
    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);

    let tid = telemetry::current_tid();
    let mine: Vec<_> = snap.events.iter().filter(|e| e.tid == tid).collect();
    assert_eq!(mine.len(), RING_CAPACITY, "a full ring retains exactly its capacity");
    assert!(snap.dropped >= overflow, "the {overflow} overwritten events count as dropped");
    // the survivors are the newest `RING_CAPACITY` instants, untorn
    // and in recording order: consecutive seqs, non-decreasing
    // timestamps, and the args we wrote
    for (k, e) in mine.iter().enumerate() {
        assert_eq!(e.kind, Kind::Instant);
        assert_eq!(e.arg, overflow + k as u64, "oldest survivor is event #{overflow}");
        if k > 0 {
            assert_eq!(e.seq, mine[k - 1].seq + 1, "per-thread seqs are consecutive");
            assert!(e.ts_ns >= mine[k - 1].ts_ns, "timestamps never run backwards");
        }
    }
    let flushes =
        snap.counters.iter().find(|(n, _)| *n == Site::ServeFlush.name()).map_or(0, |&(_, v)| v);
    assert_eq!(flushes, total, "the counter saw every event, wrapped or not");
}

/// The acceptance contract from the schedule IR: one warm sharded
/// solve on the deep/narrow corpus entry emits exactly one
/// `exec.sharded.chain` span per chain and one `exec.sharded.barrier`
/// span per `barriers_per_solve` — the trace and the static stats
/// reconcile event-for-event.
#[test]
fn sharded_solve_spans_reconcile_with_schedule_stats() {
    let _g = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    let m = corpus::deep_narrow_entry().matrix;
    let opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 7);
    let stats = engine.solve(&b).unwrap().schedule.expect("sharded engine always carries stats");
    assert!(stats.chains > 0 && stats.barriers_per_solve > 0, "corpus entry must be non-trivial");

    let mut ws = SolveWorkspace::new();
    let mut out = vec![0.0f64; m.n()];
    telemetry::set_enabled(true);
    // warm-up: spawns the pool workers (which register their rings)
    // and sizes the workspace, so the measured solve is steady-state
    engine.solve_sharded_into(&b, &mut out, &mut ws, 2).unwrap();

    // the sharded tier falls back to the bit-identical serial replay
    // if the pool declines the region (e.g. a transient spawn
    // shortfall); that replay records no chain spans, so retry — the
    // contract under test is about the parallel replay's trace
    let mut snap = None;
    for _ in 0..5 {
        telemetry::reset();
        engine.solve_sharded_into(&b, &mut out, &mut ws, 2).unwrap();
        let s = telemetry::snapshot();
        if !enters(&s, Site::ShardedChain).is_empty() {
            snap = Some(s);
            break;
        }
    }
    telemetry::set_enabled(false);
    let snap = snap.expect("five consecutive region declines is not a healthy pool");

    let chains = enters(&snap, Site::ShardedChain);
    assert_eq!(chains.len(), stats.chains, "one chain span per schedule chain");
    assert_eq!(exits(&snap, Site::ShardedChain), stats.chains, "every chain span closed");
    let barriers = enters(&snap, Site::ShardedBarrier);
    assert_eq!(
        barriers.len(),
        stats.barriers_per_solve,
        "one barrier span per ScheduleStats::barriers_per_solve"
    );
    assert_eq!(exits(&snap, Site::ShardedBarrier), stats.barriers_per_solve);
    // all on worker 0's lane, and none lost to wraparound
    let lane = chains[0].tid;
    assert!(chains.iter().chain(barriers.iter()).all(|e| e.tid == lane));
    assert_eq!(snap.dropped, 0, "one solve's events fit the ring");
    // the barrier-wait histogram measured what the stats only count
    let waits = snap.histograms.iter().find(|h| h.name == "barrier_wait_ns").unwrap();
    assert_eq!(waits.count, stats.barriers_per_solve as u64);

    // the digest and both exporters agree with the raw events
    let report = telemetry::report_from(&snap);
    let chain_summary = report.spans.iter().find(|s| s.site == "exec.sharded.chain").unwrap();
    assert_eq!(chain_summary.count, stats.chains as u64);
    let trace = telemetry::chrome_trace_json(&snap);
    assert!(trace.contains("\"exec.sharded.chain\"") && trace.contains("\"ph\":\"B\""));
    let prom = telemetry::prometheus_text(&snap);
    assert!(prom.contains("sptrsv_barrier_wait_ns_count"));
    assert!(prom.contains("sptrsv_site_events_total{site=\"exec.sharded.chain\"}"));
}

/// Arming the sink must not change a single output bit on any warm
/// tier — tracing observes the solve, it never steers it.
#[test]
fn tracing_does_not_change_results() {
    let _g = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    let m = corpus::deep_narrow_entry().matrix;
    let opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 11);
    let mut ws = SolveWorkspace::new();
    let mut dark = vec![0.0f64; m.n()];
    let mut traced = vec![0.0f64; m.n()];

    engine.solve_into(&b, &mut dark, &mut ws).unwrap();
    telemetry::set_enabled(true);
    telemetry::reset();
    engine.solve_into(&b, &mut traced, &mut ws).unwrap();
    let serial_events = telemetry::snapshot().total_events;
    telemetry::set_enabled(false);
    assert_eq!(dark, traced, "bit-identical serial solve under tracing");
    assert!(serial_events > 0, "the traced solve actually recorded spans");

    engine.solve_sharded_into(&b, &mut dark, &mut ws, 2).unwrap();
    telemetry::set_enabled(true);
    engine.solve_sharded_into(&b, &mut traced, &mut ws, 2).unwrap();
    telemetry::set_enabled(false);
    assert_eq!(dark, traced, "bit-identical sharded solve under tracing");

    // and the disabled path stays dark: no events, default digest
    telemetry::reset();
    engine.solve_into(&b, &mut dark, &mut ws).unwrap();
    assert_eq!(telemetry::snapshot().total_events, 0, "disarmed probes record nothing");
    assert_eq!(telemetry::report(), sptrsv::TelemetryReport::default());
}
