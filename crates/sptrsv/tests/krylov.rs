//! Property tests for the preconditioned Krylov subsystem.
//!
//! Seeded PCG32 loops (the repo's substitute for proptest in this
//! offline container) check, across the SPD corpus and several engine
//! kinds:
//!
//! * `PreconditionerEngine::apply_into` is **bit-identical** to the
//!   sequential `reference::solve_lower` + `reference::solve_upper`
//!   pair — the preconditioner replays the flat adjacency in natural
//!   substitution order, so the whole Krylov trajectory is reproducible
//!   against the reference to the last bit;
//! * the fused-panel `apply_batch_into` is bit-identical per RHS to
//!   the scalar apply;
//! * PCG with the ILU(0) `PreconditionerEngine` drives the relative
//!   residual below `1e-8` on every generated SPD corpus matrix, and
//!   BiCGSTAB does the same on a nonsymmetric convection-diffusion
//!   analog;
//! * the drivers accept either matrix orientation (`CscMatrix` /
//!   `CsrMatrix`) through the `SpMv` trait with identical results.

use desim::Pcg32;
use mgpu_sim::MachineConfig;
use sparsemat::factor::ilu0;
use sparsemat::{gen, CscMatrix, CsrMatrix, TripletBuilder};
use sptrsv::krylov::{bicgstab, pcg, KrylovOptions, PreconditionerEngine};
use sptrsv::{reference, verify, SolveError, SolveOptions, SolverKind};

fn opts(kind: SolverKind) -> SolveOptions {
    SolveOptions { kind, verify: false, ..SolveOptions::default() }
}

fn random_vec(n: usize, rng: &mut Pcg32) -> Vec<f64> {
    (0..n).map(|_| rng.range_f64(-2.0, 2.0)).collect()
}

#[test]
fn apply_into_is_bit_identical_to_reference_pair() {
    let mut rng = Pcg32::seed_from_u64(0xA11C);
    for entry in sparsemat::spd_corpus() {
        let f = ilu0(&entry.matrix, 1e-8).unwrap();
        for kind in [SolverKind::ZeroCopy { per_gpu: 8 }, SolverKind::LevelSet, SolverKind::Serial]
        {
            let pre =
                PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(4), &opts(kind)).unwrap();
            let mut ws = pre.take_apply_workspace();
            let mut z = vec![0.0; entry.matrix.n()];
            for _ in 0..3 {
                let r = random_vec(entry.matrix.n(), &mut rng);
                pre.apply_into(&r, &mut z, &mut ws).unwrap();
                let y = reference::solve_lower(&f.l, &r).unwrap();
                let expect = reference::solve_upper(&f.u, &y).unwrap();
                assert_eq!(
                    z, expect,
                    "{}/{kind:?}: apply_into must be bit-identical to the reference pair",
                    entry.name
                );
            }
            pre.put_apply_workspace(ws);
        }
    }
}

#[test]
fn apply_batch_into_matches_scalar_apply_bitwise() {
    let mut rng = Pcg32::seed_from_u64(0xBA7C);
    let a = gen::spd_banded(900, 10, 4.0, 17);
    let f = ilu0(&a, 1e-8).unwrap();
    let pre = PreconditionerEngine::from_ilu0(
        &f,
        MachineConfig::dgx1(4),
        &opts(SolverKind::ZeroCopy { per_gpu: 8 }),
    )
    .unwrap();
    let mut ws = pre.take_apply_workspace();
    // ragged batch sizes exercise the 8/4/2/1 panel kernels
    for &batch in &[1usize, 2, 5, 8, 13] {
        let rs: Vec<Vec<f64>> = (0..batch).map(|_| random_vec(a.n(), &mut rng)).collect();
        let mut zs: Vec<Vec<f64>> = vec![Vec::new(); batch];
        pre.apply_batch_into(&rs, &mut zs, &mut ws).unwrap();
        let mut z = vec![0.0; a.n()];
        for (k, r) in rs.iter().enumerate() {
            pre.apply_into(r, &mut z, &mut ws).unwrap();
            assert_eq!(zs[k], z, "batch={batch} rhs={k}: panel lane differs from scalar apply");
        }
    }
    pre.put_apply_workspace(ws);
}

#[test]
fn pcg_converges_on_the_spd_corpus() {
    for entry in sparsemat::spd_corpus() {
        let a = &entry.matrix;
        let f = ilu0(a, 1e-8).unwrap();
        let pre = PreconditionerEngine::from_ilu0(
            &f,
            MachineConfig::dgx1(4),
            &opts(SolverKind::ZeroCopy { per_gpu: 8 }),
        )
        .unwrap();
        let (_, b) = verify::rhs_for(a, 42);
        let kopts = KrylovOptions { max_iterations: 600, rel_tol: 1e-8 };
        let rep = pcg(a, &b, &pre, &kopts).unwrap();
        assert!(
            rep.converged,
            "{}: PCG did not converge in {} iterations (last rel resid {:.3e})",
            entry.name,
            rep.iterations,
            rep.final_rel_residual()
        );
        assert!(rep.final_rel_residual() <= 1e-8, "{}", entry.name);
        // the recurrence residual must agree with the true residual
        let true_resid = verify::rel_residual(a, &rep.x, &b);
        assert!(true_resid <= 1e-6, "{}: true residual {true_resid:.3e}", entry.name);
        // history is recorded per iteration, starting at 1.0
        assert_eq!(rep.residual_history.len(), rep.iterations + 1);
        assert_eq!(rep.residual_history[0], 1.0);
    }
}

#[test]
fn pcg_trajectory_is_deterministic() {
    let a = gen::grid_laplacian(40, 40);
    let f = ilu0(&a, 1e-8).unwrap();
    let (_, b) = verify::rhs_for(&a, 9);
    let kopts = KrylovOptions::default();
    let run = || {
        let pre = PreconditionerEngine::from_ilu0(
            &f,
            MachineConfig::dgx1(4),
            &opts(SolverKind::ZeroCopy { per_gpu: 8 }),
        )
        .unwrap();
        pcg(&a, &b, &pre, &kopts).unwrap()
    };
    let (r1, r2) = (run(), run());
    assert_eq!(r1.x, r2.x, "PCG trajectory must be bit-reproducible");
    assert_eq!(r1.residual_history, r2.residual_history);
    assert_eq!(r1.iterations, r2.iterations);
}

#[test]
fn drivers_accept_csr_operators() {
    let a = gen::grid_laplacian(24, 24);
    let a_csr = CsrMatrix::from_csc(&a);
    let f = ilu0(&a, 1e-8).unwrap();
    let pre =
        PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(2), &opts(SolverKind::LevelSet))
            .unwrap();
    let (_, b) = verify::rhs_for(&a, 3);
    let kopts = KrylovOptions::default();
    let via_csc = pcg(&a, &b, &pre, &kopts).unwrap();
    let via_csr = pcg(&a_csr, &b, &pre, &kopts).unwrap();
    assert!(via_csc.converged && via_csr.converged);
    // CSR row-gather and CSC column-scatter sum in different orders,
    // so trajectories agree numerically (not bitwise)
    assert!(verify::rel_inf_diff(&via_csc.x, &via_csr.x) < 1e-6);
}

/// Nonsymmetric convection-diffusion analog on an `nx × ny` grid:
/// the 5-point Laplacian with upwind-biased east/west couplings.
fn convection_diffusion(nx: usize, ny: usize) -> CscMatrix {
    let n = nx * ny;
    let mut b = TripletBuilder::with_capacity(n, 5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            b.push(i, i, 4.4);
            if x > 0 {
                b.push(i, idx(x - 1, y), -1.4); // upwind
            }
            if x + 1 < nx {
                b.push(i, idx(x + 1, y), -0.6);
            }
            if y > 0 {
                b.push(i, idx(x, y - 1), -1.2);
            }
            if y + 1 < ny {
                b.push(i, idx(x, y + 1), -0.8);
            }
        }
    }
    b.build().unwrap()
}

#[test]
fn bicgstab_converges_on_nonsymmetric_systems() {
    let a = convection_diffusion(36, 30);
    assert_ne!(a, a.transpose(), "system must actually be nonsymmetric");
    let f = ilu0(&a, 1e-8).unwrap();
    let pre = PreconditionerEngine::from_ilu0(
        &f,
        MachineConfig::dgx1(4),
        &opts(SolverKind::ZeroCopy { per_gpu: 8 }),
    )
    .unwrap();
    let (_, b) = verify::rhs_for(&a, 11);
    let kopts = KrylovOptions { max_iterations: 400, rel_tol: 1e-8 };
    let rep = bicgstab(&a, &b, &pre, &kopts).unwrap();
    assert!(rep.converged, "BiCGSTAB stalled at {:.3e}", rep.final_rel_residual());
    assert!(verify::rel_residual(&a, &rep.x, &b) <= 1e-6);
    assert_eq!(rep.method, "bicgstab");
}

#[test]
fn bicgstab_also_solves_spd_systems() {
    let a = gen::spd_banded(700, 8, 4.0, 29);
    let f = ilu0(&a, 1e-8).unwrap();
    let pre =
        PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(2), &opts(SolverKind::LevelSet))
            .unwrap();
    let (_, b) = verify::rhs_for(&a, 5);
    let rep = bicgstab(&a, &b, &pre, &KrylovOptions::default()).unwrap();
    assert!(rep.converged);
    assert!(verify::rel_residual(&a, &rep.x, &b) <= 1e-6);
}

#[test]
fn driver_dimension_errors_are_typed() {
    let a = gen::grid_laplacian(8, 8);
    let f = ilu0(&a, 1e-8).unwrap();
    let pre =
        PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(2), &opts(SolverKind::Serial))
            .unwrap();
    let err = pcg(&a, &[1.0, 2.0], &pre, &KrylovOptions::default()).unwrap_err();
    assert!(matches!(err, SolveError::DimensionMismatch { n: 64, rhs: 2, .. }));
    // an operator of the wrong shape is a distinct error from a short
    // right-hand side, so the caller is pointed at the right argument
    let wrong_op = gen::grid_laplacian(5, 5);
    let err = bicgstab(&wrong_op, &vec![1.0; 64], &pre, &KrylovOptions::default()).unwrap_err();
    assert!(matches!(err, SolveError::ShapeMismatch { what: "operator", n: 64, got: 25 }));
}

/// Value refresh across the `L`/`U` pair: after
/// `PreconditionerEngine::refresh(&f2)`, scalar and fused-panel
/// applies are bit-identical to a preconditioner freshly built from
/// `f2` — no re-analysis, same trajectory bits.
#[test]
fn preconditioner_refresh_matches_fresh_pair_bitwise() {
    let mut rng = Pcg32::seed_from_u64(0x5EF2);
    let a = gen::spd_banded(800, 9, 4.0, 23);
    let f = ilu0(&a, 1e-8).unwrap();
    for kind in [SolverKind::Serial, SolverKind::ZeroCopy { per_gpu: 8 }] {
        let pre = PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(4), &opts(kind)).unwrap();
        // the operator drifts on its recorded pattern; refactor without
        // symbolic work, then refresh the warm pair in place
        let mut a2 = a.clone();
        for (i, v) in a2.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + ((i % 5) as f64) * 0.004;
        }
        let mut f2 = ilu0(&a, 1e-8).unwrap();
        sparsemat::factor::ilu0_refactor(&mut f2, &a2).unwrap();
        let (l_rep, u_rep) = pre.refresh(&f2).unwrap();
        assert_eq!(l_rep.value_epoch, 1, "{kind:?}: L epoch");
        assert_eq!(u_rep.value_epoch, 1, "{kind:?}: U epoch");

        let fresh =
            PreconditionerEngine::from_ilu0(&f2, MachineConfig::dgx1(4), &opts(kind)).unwrap();
        let mut ws = pre.take_apply_workspace();
        let mut fws = fresh.take_apply_workspace();
        let mut z = vec![0.0; a.n()];
        let mut ze = vec![0.0; a.n()];
        for _ in 0..3 {
            let r = random_vec(a.n(), &mut rng);
            pre.apply_into(&r, &mut z, &mut ws).unwrap();
            fresh.apply_into(&r, &mut ze, &mut fws).unwrap();
            assert_eq!(z, ze, "{kind:?}: refreshed apply differs from fresh pair");
        }
        let rs: Vec<Vec<f64>> = (0..5).map(|_| random_vec(a.n(), &mut rng)).collect();
        let mut zs: Vec<Vec<f64>> = vec![Vec::new(); rs.len()];
        let mut zes: Vec<Vec<f64>> = vec![Vec::new(); rs.len()];
        pre.apply_batch_into(&rs, &mut zs, &mut ws).unwrap();
        fresh.apply_batch_into(&rs, &mut zes, &mut fws).unwrap();
        assert_eq!(zs, zes, "{kind:?}: refreshed batch apply differs from fresh pair");
        pre.put_apply_workspace(ws);
        fresh.put_apply_workspace(fws);
    }
}

/// The pair refresh is atomic: a pair whose `U` is rejected must leave
/// `L` uncommitted too — no apply can ever see a new-`L`/old-`U` mix.
#[test]
fn preconditioner_refresh_is_pair_atomic_on_rejection() {
    let a = gen::spd_banded(300, 6, 4.0, 31);
    let f = ilu0(&a, 1e-8).unwrap();
    let pre =
        PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(2), &opts(SolverKind::LevelSet))
            .unwrap();
    let mut ws = pre.take_apply_workspace();
    let r: Vec<f64> = (0..a.n()).map(|i| (i as f64).cos()).collect();
    let mut before = vec![0.0; a.n()];
    pre.apply_into(&r, &mut before, &mut ws).unwrap();

    // a perfectly valid L paired with a poisoned U: validation covers
    // both triangles before either engine is touched
    let mut bad = ilu0(&a, 1e-8).unwrap();
    for v in bad.l.values_mut() {
        *v *= 1.01;
    }
    let mid = bad.u.nnz() / 2;
    bad.u.values_mut()[mid] = f64::NAN;
    let err = pre.refresh(&bad).unwrap_err();
    assert!(matches!(err, SolveError::Matrix(_)), "{err:?}");
    assert_eq!(pre.forward().value_epoch(), 0, "L must not commit when U is rejected");
    assert_eq!(pre.backward().value_epoch(), 0);
    let mut after = vec![0.0; a.n()];
    pre.apply_into(&r, &mut after, &mut ws).unwrap();
    assert_eq!(after, before, "the old pair must keep serving bit-identically");
    pre.put_apply_workspace(ws);
}

#[test]
fn shared_resources_are_actually_shared() {
    let a = gen::grid_laplacian(16, 16);
    let f = ilu0(&a, 1e-8).unwrap();
    let pre =
        PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(2), &opts(SolverKind::LevelSet))
            .unwrap();
    assert!(
        std::sync::Arc::ptr_eq(pre.forward().resources(), pre.backward().resources()),
        "L and U engines must share one pool + workspace free-list"
    );
}
