//! Property-style tests: every parallel solver variant must agree with
//! the serial reference on arbitrary well-conditioned triangular
//! systems, machines and partitions — the core soundness property of
//! the whole reproduction. Cases come from a deterministic PCG32
//! (proptest is unavailable offline).

use desim::Pcg32;
use mgpu_sim::MachineConfig;
use sparsemat::gen::{self, LevelSpec};
use sparsemat::Triangle;
use sptrsv::{reference, solve, verify, SolveOptions, SolverKind};

fn kinds() -> Vec<SolverKind> {
    vec![
        SolverKind::LevelSet,
        SolverKind::SyncFree,
        SolverKind::Unified,
        SolverKind::ZeroCopy { per_gpu: 4 },
        SolverKind::ShmemBlocked,
    ]
}

/// All variants match the serial reference on random level-structured
/// systems, random GPU counts and both machines.
#[test]
fn variants_match_reference() {
    for case in 0..24u64 {
        let mut rng = Pcg32::seed_from_u64(0xFACE + case);
        let n = 40 + rng.next_below(460) as usize;
        let levels = ((n as f64 * rng.range_f64(0.02, 0.6)) as usize).clamp(1, n);
        let dep = rng.range_f64(1.5, 5.0);
        let seed = rng.next_u64();
        let gpus = 1 + rng.next_below(3) as usize;
        let dgx2 = rng.chance(0.5);
        let m = gen::level_structured(&LevelSpec {
            n,
            levels,
            nnz_target: (n as f64 * dep) as usize,
            locality: 0.6,
            window_frac: 0.05,
            seed,
        });
        let (_, b) = verify::rhs_for(&m, seed ^ 1);
        let expected = reference::solve_lower(&m, &b).unwrap();
        let cfg = if dgx2 { MachineConfig::dgx2(gpus) } else { MachineConfig::dgx1(gpus) };
        for kind in kinds() {
            let r = solve(
                &m,
                &b,
                cfg.clone(),
                &SolveOptions { kind, verify: false, ..Default::default() },
            )
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let err = verify::rel_inf_diff(&r.x, &expected);
            assert!(err < 1e-8, "case {case} {kind:?} err {err}");
        }
    }
}

/// Upper-triangular systems solve correctly too (backward substitution
/// on every backend).
#[test]
fn upper_systems_match_reference() {
    for case in 0..24u64 {
        let mut rng = Pcg32::seed_from_u64(0x0BEB + case);
        let n = 40 + rng.next_below(260) as usize;
        let seed = rng.next_u64();
        let gpus = 1 + rng.next_below(3) as usize;
        let l = gen::banded_lower(n, 6, 3.0, seed);
        let u = l.transpose();
        let (_, b) = verify::rhs_for(&u, seed ^ 2);
        let expected = reference::solve_upper(&u, &b).unwrap();
        for kind in [SolverKind::LevelSet, SolverKind::ZeroCopy { per_gpu: 4 }] {
            let r = solve(
                &u,
                &b,
                MachineConfig::dgx1(gpus),
                &SolveOptions {
                    kind,
                    triangle: Triangle::Upper,
                    verify: false,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert!(verify::rel_inf_diff(&r.x, &expected) < 1e-8, "case {case}");
        }
    }
}

/// Simulated makespans are positive, finite and deterministic.
#[test]
fn makespans_deterministic() {
    for case in 0..24u64 {
        let mut rng = Pcg32::seed_from_u64(0xDE7 + case);
        let n = 50 + rng.next_below(250) as usize;
        let seed = rng.next_u64();
        let m = gen::level_structured(&LevelSpec::new(n, (n / 11).max(1), n * 3, seed));
        let (_, b) = verify::rhs_for(&m, seed);
        let opts = SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 4 }, ..Default::default() };
        let a = solve(&m, &b, MachineConfig::dgx1(3), &opts).unwrap();
        let c = solve(&m, &b, MachineConfig::dgx1(3), &opts).unwrap();
        assert!(a.timings.total > desim::SimTime::ZERO);
        assert_eq!(a.timings.total, c.timings.total);
        assert_eq!(a.events, c.events);
    }
}

/// The solution is independent of the partitioning (numerics don't
/// depend on where components are placed).
#[test]
fn solution_is_partition_invariant() {
    for case in 0..24u64 {
        let mut rng = Pcg32::seed_from_u64(0x9A27 + case);
        let n = 50 + rng.next_below(250) as usize;
        let seed = rng.next_u64();
        let tasks = 1 + rng.next_below(15);
        let m = gen::level_structured(&LevelSpec::new(n, (n / 9).max(1), n * 3, seed));
        let (_, b) = verify::rhs_for(&m, seed ^ 3);
        let blocked = solve(
            &m,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ShmemBlocked, ..Default::default() },
        )
        .unwrap();
        let tasked = solve(
            &m,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: tasks }, ..Default::default() },
        )
        .unwrap();
        assert!(verify::rel_inf_diff(&blocked.x, &tasked.x) < 1e-9, "case {case}");
    }
}

/// Chains (fully sequential) and diagonals (fully parallel) are the
/// makespan extremes for equal component counts.
#[test]
fn chain_slower_than_diagonal() {
    for n in [100usize, 250, 400] {
        let run = |m: &sparsemat::CscMatrix| {
            let (_, b) = verify::rhs_for(m, 5);
            solve(
                m,
                &b,
                MachineConfig::dgx1(1),
                &SolveOptions { kind: SolverKind::SyncFree, ..Default::default() },
            )
            .unwrap()
            .timings
            .total
        };
        let chain = run(&gen::chain(n));
        let diag = run(&gen::diagonal(n, 7));
        assert!(chain > diag, "chain {chain} must beat diagonal {diag}");
    }
}
