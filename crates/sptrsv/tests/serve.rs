//! Behavior and stress tests for the serving front-end
//! (`sptrsv::serve`): bit-identity of coalesced results against serial
//! `solve()` under many concurrent clients, admission control /
//! backpressure, deadline-aware flushing, ticket semantics, shutdown
//! modes, and pool sharing between the dispatcher and foreground
//! batch work.

use mgpu_sim::MachineConfig;
use sparsemat::factor::ilu0;
use sparsemat::gen::{self, LevelSpec};
use sparsemat::CscMatrix;
use sptrsv::krylov::{pcg, KrylovOptions, PreconditionerEngine};
use sptrsv::serve::{
    serve_preconditioner, serve_solver, ServeError, ServedPreconditioner, ServiceConfig,
    ServiceHealth,
};
use sptrsv::{verify, SolveError, SolveOptions, SolverEngine, SolverKind};
use std::time::{Duration, Instant};

fn engine_fixture() -> (CscMatrix, SolveOptions) {
    let m = gen::level_structured(&LevelSpec::new(1500, 30, 6000, 9));
    let opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    };
    (m, opts)
}

/// The acceptance-criteria stress test: 8 submitter threads, each
/// mixing single submit-then-wait requests with 5-deep bursts and
/// deadline submissions, every result asserted **bit-identical** to
/// serial `engine.solve()` of the same right-hand side — whatever
/// panels the dispatcher coalesced them into.
#[test]
fn stress_many_clients_results_bit_identical_to_serial() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    const CLIENTS: u64 = 8;
    const PER_CLIENT: u64 = 12;

    // serial ground truth, solved on the warm engine up front
    let expected: Vec<Vec<Vec<f64>>> = (0..CLIENTS)
        .map(|c| {
            (0..PER_CLIENT)
                .map(|k| engine.solve(&verify::rhs_for(&m, 1000 + c * 100 + k).1).unwrap().x)
                .collect()
        })
        .collect();

    let cfg = ServiceConfig { max_linger: Duration::from_micros(300), ..Default::default() };
    let m = &m;
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        std::thread::scope(|s| {
            for c in 0..CLIENTS {
                let expected = &expected[c as usize];
                s.spawn(move || {
                    let mut k = 0u64;
                    while k < PER_CLIENT {
                        let burst = if k.is_multiple_of(2) { 1 } else { 5.min(PER_CLIENT - k) };
                        // a burst submits several tickets before
                        // waiting any — the coalescing opportunity
                        let tickets: Vec<_> = (k..k + burst)
                            .map(|j| {
                                let (_, b) = verify::rhs_for(m, 1000 + c * 100 + j);
                                if j % 3 == 0 {
                                    svc.submit_with_deadline(
                                        &b,
                                        Instant::now() + Duration::from_micros(150),
                                    )
                                    .unwrap()
                                } else {
                                    svc.submit(&b).unwrap()
                                }
                            })
                            .collect();
                        for (j, t) in (k..k + burst).zip(tickets) {
                            let x = t.wait().unwrap();
                            assert_eq!(
                                x, expected[j as usize],
                                "client {c} request {j}: coalesced result must be \
                                 bit-identical to serial solve()"
                            );
                        }
                        k += burst;
                    }
                });
            }
        });
    })
    .unwrap();

    let total = CLIENTS * PER_CLIENT;
    assert_eq!(report.submitted, total);
    assert_eq!(report.served, total);
    assert_eq!(report.failed, 0);
    assert_eq!(report.fill_sum, total, "every lane is a served request");
    assert!(report.panels >= 1 && report.panels <= total);
    assert!(report.max_fill <= cfg.max_lanes);
    assert!(report.queue_depth_high_water >= 1);
}

#[test]
fn queue_full_backpressure_is_typed_and_submit_never_blocks() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 3);
    // linger is effectively infinite and the panel never fills, so the
    // queue holds exactly what we submit until we flush by hand
    let cfg = ServiceConfig {
        max_lanes: 8,
        max_queue_requests: 4,
        max_linger: Duration::from_secs(300),
        ..Default::default()
    };
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        let tickets: Vec<_> = (0..4).map(|_| svc.submit(&b).unwrap()).collect();
        let t0 = Instant::now();
        let err = svc.submit(&b).unwrap_err();
        assert!(
            matches!(err, ServeError::QueueFull { depth: 4, .. }),
            "a full queue must reject, got {err:?}"
        );
        assert!(t0.elapsed() < Duration::from_secs(60), "submit must not block");
        svc.flush();
        for t in tickets {
            t.wait().unwrap();
        }
    })
    .unwrap();
    assert_eq!(report.rejected_full, 1);
    assert!(report.hint_flushes >= 1, "flush() must be counted: {report:?}");
}

#[test]
fn byte_bound_backpressure() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 4);
    let bytes_per = m.n() * std::mem::size_of::<f64>();
    let cfg = ServiceConfig {
        max_lanes: 8,
        max_queue_bytes: 2 * bytes_per,
        max_linger: Duration::from_secs(300),
        ..Default::default()
    };
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        let t1 = svc.submit(&b).unwrap();
        let t2 = svc.submit(&b).unwrap();
        let err = svc.submit(&b).unwrap_err();
        assert!(matches!(err, ServeError::QueueFull { .. }), "{err:?}");
        svc.flush();
        t1.wait().unwrap();
        t2.wait().unwrap();
    })
    .unwrap();
    assert_eq!(report.rejected_full, 1);
    assert_eq!(report.queue_bytes_high_water, 2 * bytes_per);
}

#[test]
fn shutdown_rejects_new_submits_and_drains_queued_work() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 5);
    let expect = engine.solve(&b).unwrap().x;
    let cfg =
        ServiceConfig { max_lanes: 8, max_linger: Duration::from_secs(300), ..Default::default() };
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        let t1 = svc.submit(&b).unwrap();
        let t2 = svc.submit(&b).unwrap();
        svc.shutdown();
        let err = svc.submit(&b).unwrap_err();
        assert!(matches!(err, ServeError::ShuttingDown), "{err:?}");
        // draining shutdown still completes queued work, bit-identical
        assert_eq!(t1.wait().unwrap(), expect);
        assert_eq!(t2.wait().unwrap(), expect);
    })
    .unwrap();
    assert_eq!(report.rejected_shutdown, 1);
    assert_eq!(report.drained, 2);
    assert_eq!(report.served, 2);
}

#[test]
fn non_draining_shutdown_rejects_queued_work() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 6);
    let cfg = ServiceConfig {
        max_lanes: 8,
        max_linger: Duration::from_secs(300),
        drain_on_shutdown: false,
        ..Default::default()
    };
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        let t1 = svc.submit(&b).unwrap();
        let t2 = svc.submit(&b).unwrap();
        svc.shutdown();
        assert!(matches!(t1.wait(), Err(ServeError::ShuttingDown)));
        assert!(matches!(t2.wait(), Err(ServeError::ShuttingDown)));
    })
    .unwrap();
    assert_eq!(report.shutdown_rejected, 2);
    assert_eq!(report.served, 0);
}

/// A flush hint is consumed by whichever pop services it — it must
/// never leak into a later, unrelated panel: after hinted traffic
/// completes, a fresh lone submission lingers until its own trigger.
#[test]
fn flush_hint_does_not_leak_into_the_next_panel() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 12);
    let cfg =
        ServiceConfig { max_lanes: 8, max_linger: Duration::from_secs(300), ..Default::default() };
    serve_solver(&engine, &cfg, |svc| {
        // round 1: a hinted partial panel
        let hinted: Vec<_> = (0..3).map(|_| svc.submit(&b).unwrap()).collect();
        svc.flush();
        for t in hinted {
            t.wait().unwrap();
        }
        // round 2: a lone request must sit in its linger window — no
        // residual hint state may flush it
        let t = svc.submit(&b).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let t = t.try_wait().expect_err("a stale flush hint must not flush a lone request");
        svc.flush();
        t.wait().unwrap();
    })
    .unwrap();
}

/// Shutdown racing a flood: every accepted request is accounted for
/// exactly once — solved before shutdown was observed, or completed
/// with `ShuttingDown` (draining off) — and the report's conservation
/// holds. Regression for the shutdown-vs-full flush ordering: panels
/// still queued when shutdown is observed must be rejected, not
/// solved, when draining is off.
#[test]
fn rapid_shutdown_conserves_every_request() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 13);
    let cfg = ServiceConfig {
        max_lanes: 4,
        max_linger: Duration::from_secs(300),
        drain_on_shutdown: false,
        ..Default::default()
    };
    let ((ok, rejected), report) = serve_solver(&engine, &cfg, |svc| {
        let tickets: Vec<_> = (0..12).map(|_| svc.submit(&b).unwrap()).collect();
        svc.shutdown();
        let mut ok = 0u64;
        let mut rejected = 0u64;
        for t in tickets {
            match t.wait() {
                Ok(_) => ok += 1,
                Err(ServeError::ShuttingDown) => rejected += 1,
                Err(e) => panic!("unexpected completion: {e:?}"),
            }
        }
        (ok, rejected)
    })
    .unwrap();
    assert_eq!(ok + rejected, 12, "every accepted request completes exactly once");
    assert_eq!(report.served, ok);
    assert_eq!(report.shutdown_rejected, rejected);
    assert_eq!(report.submitted, 12);
    assert_eq!(report.drained, 0, "draining is off");
}

#[test]
fn deadline_flushes_a_partial_panel_early() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 7);
    let expect = engine.solve(&b).unwrap().x;
    // without the deadline this panel would linger for five minutes
    let cfg =
        ServiceConfig { max_lanes: 8, max_linger: Duration::from_secs(300), ..Default::default() };
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        let t0 = Instant::now();
        let t = svc.submit_with_deadline(&b, Instant::now() + Duration::from_millis(5)).unwrap();
        assert_eq!(t.wait().unwrap(), expect);
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "a deadline submission must flush long before the linger window"
        );
    })
    .unwrap();
    assert!(report.deadline_flushes >= 1, "{report:?}");
}

#[test]
fn ticket_try_wait_and_wait_timeout_round_trip() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 8);
    let expect = engine.solve(&b).unwrap().x;
    let cfg = ServiceConfig {
        max_lanes: 8,
        max_queue_requests: 16,
        max_linger: Duration::from_secs(300),
        ..Default::default()
    };
    serve_solver(&engine, &cfg, |svc| {
        let t = svc.submit(&b).unwrap();
        // nothing will flush this panel for minutes, so the
        // non-blocking and bounded waits must come back unfinished
        let t = t.try_wait().expect_err("must still be pending");
        let t = t
            .wait_timeout(Duration::from_millis(20))
            .expect_err("20ms cannot outlast a 300s linger");
        svc.flush();
        let x = t.wait().unwrap();
        assert_eq!(x, expect);

        // dropping a ticket abandons the request without wedging the
        // service or leaking its slot
        let dropped = svc.submit(&b).unwrap();
        drop(dropped);
        svc.flush();
        let again = svc.submit(&b).unwrap();
        svc.flush();
        assert_eq!(again.wait().unwrap(), expect);
    })
    .unwrap();
}

/// Wide groups dispatch through the engine's pooled batch tier while a
/// foreground thread hammers the same pool with its own batched
/// solves — the scope_run helping discipline must keep both sides
/// making progress (no deadlock), and every result stays bit-identical.
#[test]
fn wide_groups_share_the_worker_pool_with_foreground_batches() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let bs: Vec<Vec<f64>> = (0..24).map(|k| verify::rhs_for(&m, 400 + k).1).collect();
    let expected: Vec<Vec<f64>> = bs.iter().map(|b| engine.solve(b).unwrap().x).collect();
    let cfg = ServiceConfig {
        max_lanes: 24, // ≥ 2 × PANEL_K: the pooled dispatch path
        max_linger: Duration::from_millis(2),
        ..Default::default()
    };
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        std::thread::scope(|s| {
            // foreground: direct pooled batches on the same engine
            s.spawn(|| {
                let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
                for _ in 0..3 {
                    engine.solve_batch_into(&bs, &mut outs).unwrap();
                    assert_eq!(outs, expected);
                }
            });
            // served traffic: bursts wide enough to hit the pooled tier
            for _ in 0..2 {
                s.spawn(|| {
                    let tickets: Vec<_> = bs.iter().map(|b| svc.submit(b).unwrap()).collect();
                    for (t, e) in tickets.into_iter().zip(&expected) {
                        assert_eq!(&t.wait().unwrap(), e);
                    }
                });
            }
        });
    })
    .unwrap();
    assert_eq!(report.served, 48);
    assert_eq!(report.failed, 0);
}

#[test]
fn served_preconditioner_keeps_pcg_trajectory_bit_identical() {
    let a = gen::grid_laplacian(14, 11);
    let f = ilu0(&a, 1e-8).unwrap();
    let opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    };
    let pre = PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(4), &opts).unwrap();
    let b: Vec<f64> = (0..a.n()).map(|i| ((i % 17) as f64 - 8.0) / 8.0).collect();
    let kopts = KrylovOptions::default();
    let baseline = pcg(&a, &b, &pre, &kopts).unwrap();
    assert!(baseline.converged);

    let cfg = ServiceConfig { max_linger: Duration::from_micros(200), ..Default::default() };
    let (served, report) = serve_preconditioner(&pre, &cfg, |svc| {
        let sp = ServedPreconditioner::new(svc).unwrap();
        std::thread::scope(|s| {
            // foreground traffic shares the service while PCG runs
            s.spawn(|| {
                for k in 0..20u64 {
                    let (_, r) = verify::rhs_for(&f.l, 70 + k);
                    let t = svc.submit(&r).unwrap();
                    t.wait().unwrap();
                }
            });
            pcg(&a, &b, &sp, &kopts).unwrap()
        })
    })
    .unwrap();
    assert_eq!(served.x, baseline.x, "served PCG iterates must be bit-identical");
    assert_eq!(served.residual_history, baseline.residual_history);
    assert_eq!(served.iterations, baseline.iterations);
    assert!(report.served >= served.iterations as u64 + 20);
}

#[test]
fn served_preconditioner_rejects_solver_backed_service() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    serve_solver(&engine, &ServiceConfig::default(), |svc| {
        let err = ServedPreconditioner::new(svc).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig { .. }), "{err:?}");
    })
    .unwrap();
}

#[test]
fn invalid_configs_are_typed_errors() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let bad = ServiceConfig { max_queue_requests: 0, ..Default::default() };
    let err = serve_solver(&engine, &bad, |_| ()).unwrap_err();
    assert!(matches!(err, ServeError::InvalidConfig { .. }), "{err:?}");
    let bad = ServiceConfig { max_queue_bytes: 0, ..Default::default() };
    let err = serve_solver(&engine, &bad, |_| ()).unwrap_err();
    assert!(matches!(err, ServeError::InvalidConfig { .. }), "{err:?}");
    // a zero lane count is clamped, not fatal
    let clamped = ServiceConfig { max_lanes: 0, ..Default::default() };
    let (_, b) = verify::rhs_for(&m, 11);
    let expect = engine.solve(&b).unwrap().x;
    let ((), report) = serve_solver(&engine, &clamped, |svc| {
        assert_eq!(svc.submit(&b).unwrap().wait().unwrap(), expect);
    })
    .unwrap();
    assert_eq!(report.max_fill, 1);
}

#[test]
fn wrong_length_submission_names_the_buffer() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    serve_solver(&engine, &ServiceConfig::default(), |svc| {
        let err = svc.submit(&[1.0, 2.0]).unwrap_err();
        let ServeError::Solve(inner) = &err else { panic!("expected Solve, got {err:?}") };
        assert!(
            matches!(inner, SolveError::DimensionMismatch { rhs: 2, buffer: "b", .. }),
            "{inner:?}"
        );
        assert!(err.to_string().contains("b has 2 entries"), "{err}");
    })
    .unwrap();
}

/// Regression for the re-waitable ticket contract: a ticket whose
/// `wait_timeout` expired (possibly several times) must keep working —
/// the eventual `wait()` returns the same bit-identical result a
/// never-timed-out wait would have.
#[test]
fn wait_timeout_expiry_then_wait_is_bit_identical() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 21);
    let expect = engine.solve(&b).unwrap().x;
    let cfg = ServiceConfig { max_linger: Duration::from_secs(300), ..Default::default() };
    serve_solver(&engine, &cfg, |svc| {
        let mut t = svc.submit(&b).unwrap();
        // several expired timeouts in a row: each returns the ticket
        // for another try, consuming nothing
        for _ in 0..3 {
            t = t.wait_timeout(Duration::from_millis(5)).expect_err("still lingering");
        }
        svc.flush();
        // and a timeout generous enough to span the flush completes
        // with the exact same bits
        let x = t.wait_timeout(Duration::from_secs(60)).expect("completed").unwrap();
        assert_eq!(x, expect, "re-waited ticket must lose nothing");
    })
    .unwrap();
}

/// A byte budget too small for even one right-hand side would admit
/// nothing forever — that is a configuration bug and must be a typed
/// error at `run()` entry, not an eternal `QueueFull` at runtime.
#[test]
fn byte_budget_below_one_request_is_invalid_config() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let bad = ServiceConfig { max_queue_bytes: m.n() * 8 - 1, ..Default::default() };
    let err = serve_solver(&engine, &bad, |_| ()).unwrap_err();
    assert!(matches!(err, ServeError::InvalidConfig { .. }), "{err:?}");
    // exactly one request's worth is serviceable
    let tight = ServiceConfig { max_queue_bytes: m.n() * 8, ..Default::default() };
    let (_, b) = verify::rhs_for(&m, 31);
    let expect = engine.solve(&b).unwrap().x;
    serve_solver(&engine, &tight, |svc| {
        assert_eq!(svc.submit(&b).unwrap().wait().unwrap(), expect);
    })
    .unwrap();
}

/// The admission guardrail: a right-hand side containing NaN or ±∞ is
/// rejected at submit with a typed `NonFinite` naming buffer `"b"` and
/// the poisoned index — it must never reach a coalesced panel where it
/// could ride with innocent requests.
#[test]
fn nonfinite_rhs_is_rejected_at_admission() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    serve_solver(&engine, &ServiceConfig::default(), |svc| {
        let (_, mut b) = verify::rhs_for(&m, 41);
        b[7] = f64::NAN;
        let err = svc.submit(&b).unwrap_err();
        assert!(
            matches!(err, ServeError::Solve(SolveError::NonFinite { buffer: "b", index: 7 })),
            "{err:?}"
        );
        b[7] = 1.0;
        b[11] = f64::INFINITY;
        let err = svc.submit(&b).unwrap_err();
        assert!(
            matches!(err, ServeError::Solve(SolveError::NonFinite { buffer: "b", index: 11 })),
            "{err:?}"
        );
        // repaired, the same vector is admitted and solved
        b[11] = 1.0;
        let expect = engine.solve(&b).unwrap().x;
        assert_eq!(svc.submit(&b).unwrap().wait().unwrap(), expect);
    })
    .unwrap();
}

/// `health()` tracks the lifecycle: `Ok` while serving, `Draining`
/// once shutdown begins (the degraded states are exercised by the
/// chaos suite, which can actually provoke them).
#[test]
fn health_reports_ok_then_draining() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    serve_solver(&engine, &ServiceConfig::default(), |svc| {
        assert_eq!(svc.health(), ServiceHealth::Ok);
        svc.shutdown();
        assert_eq!(svc.health(), ServiceHealth::Draining);
    })
    .unwrap();
}

/// `max_linger == 0` is the documented immediate-flush mode: every
/// request dispatches in whatever partial panel is queued, without a
/// flush hint and without waiting on a linger window.
#[test]
fn zero_linger_flushes_immediately() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 51);
    let expect = engine.solve(&b).unwrap().x;
    let cfg = ServiceConfig { max_linger: Duration::ZERO, ..Default::default() };
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        for _ in 0..4 {
            // no flush() calls anywhere: completion relies entirely on
            // the immediate-flush semantics
            assert_eq!(svc.submit(&b).unwrap().wait().unwrap(), expect);
        }
    })
    .unwrap();
    assert_eq!(report.served, 4);
    assert_eq!(report.hint_flushes, 0, "no hints were needed");
}

/// The error types form a `std::error::Error` chain: a serving failure
/// exposes the solver error as its `source()`, and a solver failure
/// wrapping a matrix error exposes that — what `anyhow`-style callers
/// walk for root causes.
#[test]
fn serve_errors_expose_sources() {
    use std::error::Error as _;
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    serve_solver(&engine, &ServiceConfig::default(), |svc| {
        let err = svc.submit(&[1.0, 2.0]).unwrap_err();
        let src = err.source().expect("Solve wraps its SolveError");
        assert!(src.downcast_ref::<SolveError>().is_some(), "{src}");
        assert!(ServeError::ShuttingDown.source().is_none(), "leaf errors have no source");
    })
    .unwrap();
}

/// `wait_timeout(Duration::ZERO)` is a pure poll: on a pending ticket
/// it returns `Err(ticket)` without blocking (bounded well under the
/// panel's linger), and once the request completes the same call
/// returns the bit-exact result.
#[test]
fn wait_timeout_zero_is_a_nonblocking_poll() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 21);
    let expect = engine.solve(&b).unwrap().x;
    let cfg = ServiceConfig {
        max_lanes: 8,
        max_queue_requests: 16,
        max_linger: Duration::from_secs(300),
        ..Default::default()
    };
    serve_solver(&engine, &cfg, |svc| {
        let t = svc.submit(&b).unwrap();
        // nothing flushes for minutes: a zero-timeout wait must come
        // back pending, and promptly
        let t0 = Instant::now();
        let mut t = t.wait_timeout(Duration::ZERO).expect_err("must still be pending");
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "Duration::ZERO must not block on the linger window"
        );
        svc.flush();
        // poll to completion: ZERO keeps returning the live ticket
        // until the result lands, then yields it intact
        let x = loop {
            match t.wait_timeout(Duration::ZERO) {
                Ok(r) => break r.unwrap(),
                Err(pending) => {
                    t = pending;
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(x, expect, "a polled result must be bit-identical");
    })
    .unwrap();
}

/// Shutdown racing in-flight panels, both modes: client threads are
/// mid-burst when another thread begins shutdown, so some requests are
/// in panels, some queued, some rejected at the door. In both modes the
/// report must reconcile exactly — every accepted request completes
/// exactly once (`submitted == served + failed + shutdown_rejected`),
/// drained work is a subset of served, and with draining on nothing is
/// shutdown-rejected.
#[test]
fn shutdown_racing_inflight_panels_reconciles_in_both_modes() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    for drain in [true, false] {
        let cfg = ServiceConfig {
            max_lanes: 4,
            max_linger: Duration::from_micros(50),
            drain_on_shutdown: drain,
            ..Default::default()
        };
        let (accepted, report) = serve_solver(&engine, &cfg, |svc| {
            std::thread::scope(|s| {
                let workers: Vec<_> = (0..4u64)
                    .map(|c| {
                        let (m, engine) = (&m, &engine);
                        s.spawn(move || {
                            let mut accepted = 0u64;
                            for k in 0..16u64 {
                                let (_, b) = verify::rhs_for(m, 3000 + 100 * c + k);
                                match svc.submit(&b) {
                                    Ok(t) => {
                                        accepted += 1;
                                        match t.wait() {
                                            Ok(x) => assert_eq!(
                                                x,
                                                engine.solve(&b).unwrap().x,
                                                "served mid-shutdown must stay bit-identical"
                                            ),
                                            Err(ServeError::ShuttingDown) => assert!(
                                                !drain,
                                                "draining mode must not reject queued work"
                                            ),
                                            Err(e) => panic!("unexpected completion: {e}"),
                                        }
                                    }
                                    Err(ServeError::ShuttingDown) => {}
                                    Err(ServeError::QueueFull { .. }) => {}
                                    Err(e) => panic!("unexpected submit error: {e}"),
                                }
                            }
                            accepted
                        })
                    })
                    .collect();
                // begin shutdown while the bursts are in flight
                std::thread::sleep(Duration::from_millis(2));
                svc.shutdown();
                workers.into_iter().map(|w| w.join().unwrap()).sum::<u64>()
            })
        })
        .unwrap();
        assert_eq!(report.submitted, accepted, "drain={drain}");
        assert_eq!(
            report.submitted,
            report.served + report.failed + report.shutdown_rejected,
            "drain={drain}: accepted work must complete exactly once: {report:?}"
        );
        assert!(report.drained <= report.served, "drain={drain}");
        if drain {
            assert_eq!(report.shutdown_rejected, 0, "draining mode rejects nothing: {report:?}");
        }
        assert!(
            report.rejected_shutdown + report.submitted >= 4,
            "drain={drain}: the race must exercise the shutdown path"
        );
    }
}

/// Value refresh under live traffic: client threads stream requests
/// while the main thread swaps in new factor values mid-stream. Every
/// ticket must resolve against exactly one value epoch — each result
/// is bit-identical to either the old-epoch or the new-epoch warm
/// solve, never a mix — and anything submitted after `refresh_solver`
/// returns must see the new values.
#[test]
fn refresh_solver_under_live_traffic_serves_exactly_one_epoch_per_ticket() {
    let (m, opts) = engine_fixture();
    let mut m2 = m.clone();
    for (i, v) in m2.values_mut().iter_mut().enumerate() {
        *v *= 1.0 + ((i % 7) as f64) * 0.01;
    }
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    // new-epoch ground truth from a cold build; old-epoch ground truth
    // from the served engine itself, solved before the service starts
    let cold2 = SolverEngine::build(&m2, MachineConfig::dgx1(4), &opts).unwrap();
    const CLIENTS: u64 = 4;
    const PER_CLIENT: u64 = 10;
    let rhs = |c: u64, k: u64| verify::rhs_for(&m, 5000 + c * 100 + k).1;
    let old_x: Vec<Vec<Vec<f64>>> = (0..CLIENTS)
        .map(|c| (0..PER_CLIENT).map(|k| engine.solve(&rhs(c, k)).unwrap().x).collect())
        .collect();
    let new_x: Vec<Vec<Vec<f64>>> = (0..CLIENTS)
        .map(|c| (0..PER_CLIENT).map(|k| cold2.solve(&rhs(c, k)).unwrap().x).collect())
        .collect();

    let cfg = ServiceConfig { max_linger: Duration::from_micros(200), ..Default::default() };
    let m = &m;
    let m2 = &m2;
    let cold2 = &cold2;
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        std::thread::scope(|s| {
            for c in 0..CLIENTS {
                let (old_x, new_x) = (&old_x[c as usize], &new_x[c as usize]);
                s.spawn(move || {
                    for k in 0..PER_CLIENT {
                        let (_, b) = verify::rhs_for(m, 5000 + c * 100 + k);
                        let x = svc.submit(&b).unwrap().wait().unwrap();
                        let (ok, nk) = (k as usize, k as usize);
                        assert!(
                            x == old_x[ok] || x == new_x[nk],
                            "client {c} request {k}: result must match exactly one \
                             value epoch, never a torn mix"
                        );
                    }
                });
            }
            // refresh while the clients are mid-stream
            std::thread::sleep(Duration::from_millis(1));
            let rep = svc.refresh_solver(m2).unwrap();
            assert_eq!(rep.value_epoch, 1);
            assert!(rep.audit.is_clean());
            // anything submitted after the refresh returned is
            // guaranteed the new epoch
            let (_, b) = verify::rhs_for(m, 9_999);
            let x = svc.submit(&b).unwrap().wait().unwrap();
            assert_eq!(x, cold2.solve(&b).unwrap().x, "post-refresh tickets see new values");
        });
    })
    .unwrap();
    assert_eq!(report.value_refreshes, 1, "{report:?}");
    assert_eq!(report.refresh_failures, 0, "{report:?}");
    assert_eq!(report.failed, 0, "{report:?}");
    assert_eq!(report.served, CLIENTS * PER_CLIENT + 1);
    assert_eq!(engine.value_epoch(), 1, "the refresh lands in the underlying engine");
}

/// The refresh entry points are arm-checked and failure-counted: a
/// solver-backed service rejects `refresh_preconditioner` (and vice
/// versa) with a typed config error, and a rejected refresh leaves the
/// old epoch serving bit-identically while `refresh_failures` ticks.
#[test]
fn refresh_cross_arm_and_rejections_are_typed() {
    let (m, opts) = engine_fixture();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 41);
    let expect = engine.solve(&b).unwrap().x;
    let f = ilu0(&gen::grid_laplacian(6, 5), 1e-8).unwrap();
    let mut poisoned = m.clone();
    let mid = poisoned.nnz() / 2;
    poisoned.values_mut()[mid] = f64::NAN;
    let ((), report) = serve_solver(&engine, &ServiceConfig::default(), |svc| {
        let err = svc.refresh_preconditioner(&f).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig { .. }), "{err:?}");
        // a non-finite replacement value is rejected before any
        // mutation — the old epoch keeps serving, bit-identically
        let err = svc.refresh_solver(&poisoned).unwrap_err();
        assert!(
            matches!(err, ServeError::Solve(SolveError::Matrix(_))),
            "poisoned values must surface the typed matrix error, got {err:?}"
        );
        assert_eq!(svc.submit(&b).unwrap().wait().unwrap(), expect);
    })
    .unwrap();
    assert_eq!(report.value_refreshes, 0);
    assert_eq!(report.refresh_failures, 1, "{report:?}");
    assert_eq!(engine.value_epoch(), 0, "a rejected refresh must not bump the epoch");

    // the preconditioner arm, including a successful pair refresh
    let a = gen::grid_laplacian(14, 11);
    let f = ilu0(&a, 1e-8).unwrap();
    let mut a2 = a.clone();
    for (i, v) in a2.values_mut().iter_mut().enumerate() {
        *v *= 1.0 + ((i % 5) as f64) * 0.004;
    }
    let mut f2 = ilu0(&a, 1e-8).unwrap();
    sparsemat::factor::ilu0_refactor(&mut f2, &a2).unwrap();
    let popts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    };
    let pre = PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(4), &popts).unwrap();
    let pre2 = PreconditionerEngine::from_ilu0(&f2, MachineConfig::dgx1(4), &popts).unwrap();
    let (_, r) = verify::rhs_for(&f.l, 77);
    let expect2 = pre2.apply(&r).unwrap();
    let ((), report) = serve_preconditioner(&pre, &ServiceConfig::default(), |svc| {
        let err = svc.refresh_solver(&m).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig { .. }), "{err:?}");
        let (l_rep, u_rep) = svc.refresh_preconditioner(&f2).unwrap();
        assert_eq!((l_rep.value_epoch, u_rep.value_epoch), (1, 1));
        let z = svc.submit(&r).unwrap().wait().unwrap();
        assert_eq!(z, expect2, "the served pair must apply the refreshed values");
    })
    .unwrap();
    assert_eq!(report.value_refreshes, 1, "{report:?}");
    assert_eq!(report.refresh_failures, 0, "{report:?}");
}
