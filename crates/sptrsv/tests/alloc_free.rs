//! Proof that warm `solve_into` / `solve_panel_into` /
//! `solve_sharded_into` — and the preconditioner tier's `apply_into` /
//! `apply_batch_into` — allocate nothing.
//!
//! Also proves `refresh_values` — the in-place value swap across
//! every warm tier — requests no heap memory at all: the recorded
//! analysis is reused verbatim, nothing symbolic is rebuilt.
//!
//! And proves the telemetry plane holds its zero-allocation contract
//! on both sides of the switch: disabled probes never touch the heap
//! (every warm window here runs with them compiled in), and once each
//! recording thread's ring exists, *enabled* tracing keeps every warm
//! tier heap-silent too — spans, instants, counters and histograms
//! are pure atomics in steady state.
//!
//! A counting global allocator wraps [`std::alloc::System`]; after a
//! warm-up call has grown the workspace and output buffers (and, for
//! the sharded tier, spawned the pool workers and sized the region
//! queue), further warm solves must report **zero** allocator hits —
//! the property the zero-allocation tiers of the engine advertise.
//! The counter is process-global, so the sharded window also proves
//! the *worker threads* stay heap-silent: any allocation they made
//! while the measured solve runs would land in the same counter. This
//! lives in its own integration-test binary so the global allocator
//! swap cannot perturb (or be perturbed by) other tests.

use mgpu_sim::MachineConfig;
use sparsemat::factor::ilu0;
use sparsemat::gen::{self, LevelSpec};
use sptrsv::krylov::PreconditionerEngine;
use sptrsv::serve::{serve_solver, ServiceConfig};
use sptrsv::{verify, SolveOptions, SolveWorkspace, SolverEngine, SolverKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Counts every allocation entry point, delegating to the system
/// allocator. Deallocations are uncounted: the property under test is
/// "no new heap memory is requested during a warm solve".
struct CountingAlloc;

// SAFETY: pure delegation to `System`; the counter is a relaxed atomic
// with no side effects on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

// Single #[test] in this binary: the allocation counter is
// process-global, so a concurrently running sibling test would bleed
// its allocations into the measurement windows and flake the zero
// asserts. Keep everything (including the numeric sanity check) in one
// test function.
#[test]
fn warm_solve_into_and_panel_allocate_nothing() {
    // sanity first: the allocator swap must not perturb numerics
    {
        let m = gen::banded_lower(800, 8, 4.0, 3);
        let (_, b) = verify::rhs_for(&m, 42);
        let opts = SolveOptions::default();
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let r = engine.solve(&b).unwrap();
        assert!(r.verified_rel_err.unwrap() <= verify::DEFAULT_TOL);
    }

    let m = gen::level_structured(&LevelSpec::new(2000, 40, 8000, 23));
    let n = m.n();
    let bs: Vec<Vec<f64>> = (0..5u64).map(|k| verify::rhs_for(&m, 10 + k).1).collect();
    // same structure, perturbed values — the refresh windows below
    // prove the in-place value swap itself never touches the heap
    let m2 = {
        let mut t = m.clone();
        for (i, v) in t.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + ((i % 7) as f64) * 0.01;
        }
        t
    };

    for (kind, verify_opt) in [
        (SolverKind::ZeroCopy { per_gpu: 8 }, false),
        (SolverKind::ZeroCopy { per_gpu: 8 }, true),
        (SolverKind::LevelSet, false),
        (SolverKind::Serial, false),
    ] {
        let opts = SolveOptions { kind, verify: verify_opt, ..SolveOptions::default() };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let mut ws = SolveWorkspace::new();
        let mut out = vec![0.0f64; n];
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];

        // warm-up: grows workspace + output buffers once
        engine.solve_into(&bs[0], &mut out, &mut ws).unwrap();
        engine.solve_panel_into(&bs, &mut outs, &mut ws).unwrap();

        let single = allocations_during(|| {
            for b in &bs {
                engine.solve_into(b, &mut out, &mut ws).unwrap();
            }
        });
        assert_eq!(single, 0, "{kind:?} verify={verify_opt}: warm solve_into must not allocate");

        let panel = allocations_during(|| {
            engine.solve_panel_into(&bs, &mut outs, &mut ws).unwrap();
        });
        assert_eq!(
            panel, 0,
            "{kind:?} verify={verify_opt}: warm solve_panel_into must not allocate"
        );

        // sharded level-parallel tier: the warm-up solve spawns the
        // pool workers and sizes the region state; steady-state
        // sharded solves must then be heap-silent end to end —
        // region dispatch, level barriers and the two-phase kernel
        // included
        engine.solve_sharded_into(&bs[0], &mut out, &mut ws, 2).unwrap();
        let sharded = allocations_during(|| {
            for b in &bs {
                engine.solve_sharded_into(b, &mut out, &mut ws, 2).unwrap();
            }
        });
        assert_eq!(
            sharded, 0,
            "{kind:?} verify={verify_opt}: warm solve_sharded_into must not allocate"
        );

        // value refresh: structure validation, the numeric audit, the
        // in-place rewrite of every warm tier's value arrays and the
        // epoch bump must all be heap-silent — the operation's whole
        // point is reusing the recorded analysis, and a clean audit's
        // empty finding lists never allocate
        let refreshed = allocations_during(|| {
            engine.refresh_values(&m2).unwrap();
        });
        assert_eq!(refreshed, 0, "{kind:?} verify={verify_opt}: refresh_values must not allocate");
        // the refreshed engine keeps its warm zero-allocation property
        let post = allocations_during(|| {
            engine.solve_into(&bs[0], &mut out, &mut ws).unwrap();
        });
        assert_eq!(
            post, 0,
            "{kind:?} verify={verify_opt}: warm solve_into after a refresh must not allocate"
        );
    }

    // --- the serving front-end: once the slots, group buffers and
    // queue have warmed up, a full submit → coalesce → dispatch →
    // wait_into cycle must be heap-silent — on BOTH sides of the
    // queue (the dispatcher thread's allocations land in the same
    // process-global counter). The panel fills deterministically: the
    // linger window is effectively infinite and lanes == burst size,
    // so every panel flushes exactly on Full with all 8 lanes.
    {
        let opts = SolveOptions {
            kind: SolverKind::ZeroCopy { per_gpu: 8 },
            verify: false,
            ..SolveOptions::default()
        };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let burst: Vec<Vec<f64>> = (0..8u64).map(|k| verify::rhs_for(&m, 80 + k).1).collect();
        let expected: Vec<Vec<f64>> = burst.iter().map(|b| engine.solve(b).unwrap().x).collect();
        let cfg = ServiceConfig {
            max_lanes: 8,
            max_queue_requests: 64,
            max_linger: Duration::from_secs(300),
            ..Default::default()
        };
        serve_solver(&engine, &cfg, |svc| {
            let mut outs: Vec<Vec<f64>> = (0..8).map(|_| vec![0.0; n]).collect();
            let mut tickets = Vec::with_capacity(8);
            // warm-up rounds: create the slots, grow the queue, the
            // dispatcher group buffers and its panel workspace
            for _ in 0..3 {
                for b in &burst {
                    tickets.push(svc.submit(b).unwrap());
                }
                for (t, out) in tickets.drain(..).zip(outs.iter_mut()) {
                    t.wait_into(out).unwrap();
                }
            }
            let served = allocations_during(|| {
                for _ in 0..4 {
                    for b in &burst {
                        tickets.push(svc.submit(b).unwrap());
                    }
                    for (t, out) in tickets.drain(..).zip(outs.iter_mut()) {
                        t.wait_into(out).unwrap();
                    }
                }
            });
            assert_eq!(served, 0, "steady-state serving dispatch must not allocate");
            assert_eq!(outs, expected, "served results stay bit-identical to solve()");
        })
        .unwrap();
    }

    // --- the fault-injection plane: in its default (disabled) build
    // the probe path is a compiled-out constant — consulting it from a
    // hot loop costs zero heap allocations and reports no active plan.
    // (The serving window above already covers the probes embedded in
    // submit and dispatch; this pins the public query too.)
    {
        let inert = allocations_during(|| {
            for _ in 0..1000 {
                assert!(!sptrsv::fault::plan_active(), "no plan can be armed without the feature");
            }
        });
        assert_eq!(inert, 0, "disabled fault plane must not touch the heap");
    }

    // --- the telemetry plane, disabled (the default): every window
    // above already ran with the span/metric probes compiled in and
    // switched off, so those zero asserts double as the proof that the
    // disabled probes never touch the heap. Pin the read side too: a
    // disabled digest is the default (empty) report.
    {
        let disabled = allocations_during(|| {
            for _ in 0..1000 {
                let r = sptrsv::telemetry::report();
                assert!(!r.enabled, "telemetry must be disabled by default");
            }
        });
        assert_eq!(disabled, 0, "disabled telemetry report() must not touch the heap");
    }

    // --- the telemetry plane, enabled: after each recording thread's
    // ring exists (pool workers register theirs eagerly at spawn; the
    // caller's is created by the warm-up solves below), steady-state
    // recording — spans, instants, counters, histograms — is pure
    // atomics and must keep every warm tier heap-silent.
    {
        let opts = SolveOptions {
            kind: SolverKind::ZeroCopy { per_gpu: 8 },
            verify: false,
            ..SolveOptions::default()
        };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let mut ws = SolveWorkspace::new();
        let mut out = vec![0.0f64; n];
        let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
        sptrsv::telemetry::set_enabled(true);
        // warm-up: grows buffers AND allocates this thread's ring
        engine.solve_into(&bs[0], &mut out, &mut ws).unwrap();
        engine.solve_panel_into(&bs, &mut outs, &mut ws).unwrap();
        engine.solve_sharded_into(&bs[0], &mut out, &mut ws, 2).unwrap();

        let traced = allocations_during(|| {
            for b in &bs {
                engine.solve_into(b, &mut out, &mut ws).unwrap();
                engine.solve_sharded_into(b, &mut out, &mut ws, 2).unwrap();
            }
            engine.solve_panel_into(&bs, &mut outs, &mut ws).unwrap();
            engine.refresh_values(&m2).unwrap();
        });
        sptrsv::telemetry::set_enabled(false);
        assert_eq!(traced, 0, "enabled telemetry must keep warm solves allocation-free");
    }

    // --- the preconditioner tier: warm apply_into / apply_batch_into
    // must be heap-silent too — it is the inner loop of every Krylov
    // iteration, the paper's §I workload
    let a = gen::spd_banded(1500, 12, 4.0, 7);
    let f = ilu0(&a, 1e-8).unwrap();
    for kind in [SolverKind::ZeroCopy { per_gpu: 8 }, SolverKind::Serial] {
        let opts = SolveOptions { kind, verify: false, ..SolveOptions::default() };
        let pre = PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(4), &opts).unwrap();
        let rs: Vec<Vec<f64>> = (0..5u64).map(|k| verify::rhs_for(&a, 50 + k).1).collect();
        let mut ws = pre.take_apply_workspace();
        let mut z = vec![0.0f64; a.n()];
        let mut zs: Vec<Vec<f64>> = vec![Vec::new(); rs.len()];

        // warm-up: grows the apply workspace + batch buffers once
        pre.apply_into(&rs[0], &mut z, &mut ws).unwrap();
        pre.apply_batch_into(&rs, &mut zs, &mut ws).unwrap();

        let apply = allocations_during(|| {
            for r in &rs {
                pre.apply_into(r, &mut z, &mut ws).unwrap();
            }
        });
        assert_eq!(apply, 0, "{kind:?}: warm apply_into must not allocate");

        let batch = allocations_during(|| {
            pre.apply_batch_into(&rs, &mut zs, &mut ws).unwrap();
        });
        assert_eq!(batch, 0, "{kind:?}: warm apply_batch_into must not allocate");
        pre.put_apply_workspace(ws);
    }
}
