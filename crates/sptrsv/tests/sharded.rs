//! Property tests for the sharded level-parallel warm tier.
//!
//! The contract under test is the owner-computes bit-identity: for any
//! factor, any worker count and any partition kind, a sharded warm
//! solve ([`SolverEngine::solve_sharded_into`]) produces **exactly**
//! the bits of the serial replay (`solve_into` / `solve`), because
//! every row is solved — and its partial sum accumulated in canonical
//! source order — by exactly one worker. Cases come from a
//! deterministic PCG32 (proptest is unavailable offline), matching the
//! repo's other suites.

use desim::Pcg32;
use mgpu_sim::MachineConfig;
use sparsemat::gen::{self, LevelSpec};
use sparsemat::Triangle;
use sptrsv::{verify, SolveOptions, SolveWorkspace, SolverEngine, SolverKind};

/// One kind per partition shape: `ShmemBlocked` exercises
/// `Partition::Blocked` ownership, `ZeroCopy` the round-robin task
/// pool, and `LevelSet` the plan-less (ownerless) segmentation.
fn kinds() -> Vec<SolverKind> {
    vec![SolverKind::ShmemBlocked, SolverKind::ZeroCopy { per_gpu: 8 }, SolverKind::LevelSet]
}

/// Sharded replay is bit-identical to the serial replay across random
/// lower/upper factors, every worker count 1–8 and both partition
/// kinds.
#[test]
fn sharded_bit_identical_to_serial_replay() {
    for case in 0..4u64 {
        let mut rng = Pcg32::seed_from_u64(0x5AA2DED + case);
        let n = 300 + rng.next_below(900) as usize;
        let lower =
            gen::level_structured(&LevelSpec::new(n, (n / 40).max(2), n * 4, rng.next_u64()));
        let upper = lower.transpose();
        for (m, tri) in [(&lower, Triangle::Lower), (&upper, Triangle::Upper)] {
            let (_, b) = verify::rhs_for(m, rng.next_u64());
            for kind in kinds() {
                let opts = SolveOptions { kind, triangle: tri, ..SolveOptions::default() };
                let engine = SolverEngine::build(m, MachineConfig::dgx1(4), &opts).unwrap();
                let serial = engine.solve(&b).unwrap().x;
                let mut ws = SolveWorkspace::new();
                let mut out = vec![0.0f64; n];
                for workers in 1..=8usize {
                    out.fill(f64::NAN); // stale output must be fully overwritten
                    engine.solve_sharded_into(&b, &mut out, &mut ws, workers).unwrap();
                    assert_eq!(
                        out, serial,
                        "case {case} {kind:?}/{tri:?} workers={workers}: sharded bits"
                    );
                }
            }
        }
    }
}

/// The auto-heuristic tiers of `solve_into` agree with an explicitly
/// sharded solve and with `solve` on a factor wide enough to trip the
/// thresholds — and repeated sharded solves on one engine reuse the
/// pool deterministically.
#[test]
fn repeated_sharded_solves_are_deterministic() {
    // one very wide level keeps every worker busy: n rows over 8 levels
    let m = gen::level_structured(&LevelSpec::new(6000, 8, 24000, 3));
    let opts = SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 11);
    let serial = engine.solve(&b).unwrap().x;
    let mut ws = SolveWorkspace::new();
    let mut out = vec![0.0f64; m.n()];
    for round in 0..5 {
        engine.solve_sharded_into(&b, &mut out, &mut ws, 4).unwrap();
        assert_eq!(out, serial, "round {round}");
    }
    // solve_into (auto tier) must agree bit-for-bit as well, whichever
    // tier its heuristic picked on this machine
    engine.solve_into(&b, &mut out, &mut ws).unwrap();
    assert_eq!(out, serial);
}

/// Concurrent sharded solves on one shared engine stay correct and
/// non-blocking: the pool admits one parallel region at a time, and a
/// caller finding the slot busy degrades to the (bit-identical)
/// serial replay instead of queueing.
#[test]
fn concurrent_sharded_solves_agree_bit_for_bit() {
    let m = gen::level_structured(&LevelSpec::new(4000, 8, 16000, 29));
    let opts = SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let cases: Vec<(Vec<f64>, Vec<f64>)> = (0..4u64)
        .map(|k| {
            let (_, b) = verify::rhs_for(&m, 600 + k);
            let x = engine.solve(&b).unwrap().x;
            (b, x)
        })
        .collect();
    let engine = &engine;
    std::thread::scope(|s| {
        for (b, expect) in &cases {
            s.spawn(move || {
                let mut ws = SolveWorkspace::new();
                let mut out = vec![0.0f64; b.len()];
                for round in 0..3 {
                    engine.solve_sharded_into(b, &mut out, &mut ws, 4).unwrap();
                    assert_eq!(&out, expect, "round {round}");
                }
            });
        }
    });
}

/// New values on the recorded structure: scale every entry by a
/// position-dependent factor so no diagonal is zeroed.
fn perturbed(m: &sparsemat::CscMatrix) -> sparsemat::CscMatrix {
    let mut m2 = m.clone();
    for (i, v) in m2.values_mut().iter_mut().enumerate() {
        *v *= 1.0 + ((i % 7) as f64) * 0.01;
    }
    m2
}

/// Chain-fused replay (the default tuning on a deep/narrow factor
/// fuses nearly every level) is bit-identical to the serial replay for
/// every worker count 1–8 across all three engine kinds × both
/// triangles — **including after `refresh_values`**, which must leave
/// the Schedule IR untouched while the fused chains pick up the new
/// numeric epoch.
#[test]
fn chain_fused_bit_identical_including_after_refresh() {
    let lower = gen::deep_narrow(150, 4, 3.0, 0xC4A1);
    let upper = lower.transpose();
    for (m, tri) in [(&lower, Triangle::Lower), (&upper, Triangle::Upper)] {
        let m2 = perturbed(m);
        for kind in kinds() {
            let opts = SolveOptions { kind, triangle: tri, ..SolveOptions::default() };
            let engine = SolverEngine::build(m, MachineConfig::dgx1(4), &opts).unwrap();
            let stats = engine.solve(&verify::rhs_for(m, 1).1).unwrap().schedule.unwrap();
            assert!(stats.fused_fraction > 0.5, "{kind:?}/{tri:?}: factor must actually fuse");
            let (_, b) = verify::rhs_for(m, 0xF00D);
            let serial = engine.solve(&b).unwrap().x;
            let mut ws = SolveWorkspace::new();
            let mut out = vec![0.0f64; m.n()];
            for workers in 1..=8usize {
                out.fill(f64::NAN);
                engine.solve_sharded_into(&b, &mut out, &mut ws, workers).unwrap();
                assert_eq!(out, serial, "{kind:?}/{tri:?} workers={workers}: fused bits");
            }
            // refresh to a new value epoch; the cold rebuild on the new
            // values is the bit-exact oracle for every worker count
            engine.refresh_values(&m2).unwrap();
            let cold = SolverEngine::build(&m2, MachineConfig::dgx1(4), &opts).unwrap();
            let expect = cold.solve(&b).unwrap().x;
            for workers in 1..=8usize {
                out.fill(f64::NAN);
                engine.solve_sharded_into(&b, &mut out, &mut ws, workers).unwrap();
                assert_eq!(
                    out, expect,
                    "{kind:?}/{tri:?} workers={workers}: fused bits after refresh"
                );
            }
        }
    }
}

/// On the deep/narrow corpus entry, chain fusion cuts barriers per
/// sharded solve by at least 5x against the per-level schedule
/// (`chain_width_threshold: 0`). Asserted from the reported Schedule
/// IR statistics, so it holds on any core count.
#[test]
fn chain_fusion_cuts_barriers_on_deep_narrow_corpus() {
    let entry = sparsemat::corpus::deep_narrow_entry();
    let m = &entry.matrix;
    let (_, b) = verify::rhs_for(m, 3);
    let fused_opts = SolveOptions { kind: SolverKind::LevelSet, ..SolveOptions::default() };
    let unfused_opts = SolveOptions { chain_width_threshold: 0, ..fused_opts.clone() };
    let fused = SolverEngine::build(m, MachineConfig::dgx1(1), &fused_opts)
        .unwrap()
        .solve(&b)
        .unwrap()
        .schedule
        .unwrap();
    let unfused = SolverEngine::build(m, MachineConfig::dgx1(1), &unfused_opts)
        .unwrap()
        .solve(&b)
        .unwrap()
        .schedule
        .unwrap();
    assert_eq!(fused.levels, unfused.levels, "same level structure");
    assert_eq!(unfused.chains, unfused.levels, "threshold 0 = one chain per level");
    assert_eq!(unfused.barriers_per_solve, 2 * unfused.levels - 1);
    assert!(fused.fused_fraction > 0.9, "deep/narrow entry must fuse nearly everything");
    assert!(
        unfused.barriers_per_solve >= 5 * fused.barriers_per_solve.max(1),
        "chain fusion must cut barriers ≥5x: {} vs {}",
        unfused.barriers_per_solve,
        fused.barriers_per_solve
    );
}

/// The serial engine variant accepts the sharded entry point (workers
/// are irrelevant there) and still verifies.
#[test]
fn serial_variant_accepts_sharded_entry_point() {
    let m = gen::banded_lower(400, 6, 3.0, 9);
    let opts = SolveOptions { kind: SolverKind::Serial, ..Default::default() };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(1), &opts).unwrap();
    let (_, b) = verify::rhs_for(&m, 21);
    let serial = engine.solve(&b).unwrap().x;
    let mut ws = SolveWorkspace::new();
    let mut out = vec![0.0f64; m.n()];
    engine.solve_sharded_into(&b, &mut out, &mut ws, 6).unwrap();
    assert_eq!(out, serial);
}

/// Caller-input problems on the sharded entry point are typed errors,
/// not panics.
#[test]
fn sharded_rejects_bad_inputs_with_typed_errors() {
    let m = gen::banded_lower(300, 5, 3.0, 2);
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &SolveOptions::default()).unwrap();
    let (_, b) = verify::rhs_for(&m, 1);
    let mut ws = SolveWorkspace::new();
    let mut out = vec![0.0f64; m.n()];
    let err = engine.solve_sharded_into(&[1.0, 2.0], &mut out, &mut ws, 4).unwrap_err();
    assert!(matches!(err, sptrsv::SolveError::DimensionMismatch { n: 300, rhs: 2, .. }));
    let mut short = vec![0.0f64; 7];
    let err = engine.solve_sharded_into(&b, &mut short, &mut ws, 4).unwrap_err();
    assert!(matches!(err, sptrsv::SolveError::OutputLength { n: 300, out: 7, .. }));
}
