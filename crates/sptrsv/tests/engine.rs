//! Build-once/solve-many engine contract tests:
//!
//! 1. `engine.solve(&b)` is **bit-identical** to one-shot
//!    `solve(&l, &b, …)` for every `SolverKind` variant — same
//!    solution bits, same virtual timings, same event counts.
//! 2. Warm solves perform zero analysis construction (level sets,
//!    plans, adjacency), checked against the per-thread counters.
//! 3. Two `solve_batch` calls on one engine are deterministic across
//!    runs and across worker counts.
//!
//! Cases are drawn from a deterministic PCG32 (proptest is unavailable
//! offline).

use desim::Pcg32;
use mgpu_sim::MachineConfig;
use sparsemat::gen::{self, LevelSpec};
use sparsemat::Triangle;
use sptrsv::{exec, plan, solve, verify, SolveOptions, SolveWorkspace, SolverEngine, SolverKind};

fn all_kinds() -> Vec<SolverKind> {
    vec![
        SolverKind::Serial,
        SolverKind::LevelSet,
        SolverKind::SyncFree,
        SolverKind::Unified,
        SolverKind::UnifiedTasks { per_gpu: 8 },
        SolverKind::ShmemBlocked,
        SolverKind::ShmemNaive,
        SolverKind::ZeroCopy { per_gpu: 8 },
        SolverKind::ZeroCopyTotal { total: 32 },
    ]
}

/// Property: for random systems and every variant, a warm engine solve
/// reproduces the one-shot path bit for bit.
#[test]
fn engine_solve_bit_identical_to_one_shot_for_all_kinds() {
    for case in 0..6u64 {
        let mut rng = Pcg32::seed_from_u64(0xE9612E + case);
        let n = 200 + rng.next_below(600) as usize;
        let m = gen::level_structured(&LevelSpec::new(n, (n / 13).max(1), n * 4, rng.next_u64()));
        let (_, b) = verify::rhs_for(&m, rng.next_u64());
        for kind in all_kinds() {
            let opts = SolveOptions { kind, ..SolveOptions::default() };
            let one_shot = solve(&m, &b, MachineConfig::dgx1(4), &opts)
                .unwrap_or_else(|e| panic!("one-shot {kind:?}: {e}"));
            let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
            // discard one warm-up solve so the second one is maximally warm
            let _ = engine.solve(&b).unwrap();
            let warm = engine.solve(&b).unwrap();
            assert_eq!(one_shot.x, warm.x, "case {case} {kind:?}: x bits");
            assert_eq!(one_shot.timings.total, warm.timings.total, "case {case} {kind:?}");
            assert_eq!(one_shot.timings.analysis, warm.timings.analysis, "case {case} {kind:?}");
            assert_eq!(one_shot.events, warm.events, "case {case} {kind:?}");
            assert_eq!(one_shot.cross_edges, warm.cross_edges, "case {case} {kind:?}");
            assert_eq!(one_shot.kernels, warm.kernels, "case {case} {kind:?}");
        }
    }
}

/// Warm solves construct nothing: no level-set analyses, no plans, no
/// exec adjacency builds — across every variant.
#[test]
fn warm_solves_never_reanalyze() {
    let m = gen::level_structured(&LevelSpec::new(1500, 30, 6000, 77));
    let (_, b) = verify::rhs_for(&m, 7);
    for kind in all_kinds() {
        let opts = SolveOptions { kind, ..SolveOptions::default() };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let levels = sparsemat::levels::analyze_invocations();
        let plans = plan::build_invocations();
        let execs = exec::analysis_builds();
        for _ in 0..3 {
            engine.solve(&b).unwrap();
        }
        // opts.verify = true runs the serial reference per solve, which
        // must not analyze either
        assert_eq!(sparsemat::levels::analyze_invocations(), levels, "{kind:?}: levels rebuilt");
        assert_eq!(plan::build_invocations(), plans, "{kind:?}: plan rebuilt");
        assert_eq!(exec::analysis_builds(), execs, "{kind:?}: adjacency rebuilt");
    }
}

/// Two `solve_batch` calls on one engine agree with each other and
/// with a fresh engine, whatever the thread count.
#[test]
fn solve_batch_deterministic_across_runs() {
    let m = gen::level_structured(&LevelSpec::new(1000, 25, 4000, 3));
    let bs: Vec<Vec<f64>> = (0..12).map(|k| verify::rhs_for(&m, 900 + k).1).collect();
    let opts = SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let a = engine.solve_batch(&bs).unwrap();
    let b2 = engine.solve_batch(&bs).unwrap();
    let fresh = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts)
        .unwrap()
        .solve_batch_with_threads(&bs, 2)
        .unwrap();
    assert_eq!(a.total, b2.total);
    assert_eq!(a.total, fresh.total);
    assert_eq!(a.reports.len(), bs.len());
    for ((ra, rb), rf) in a.reports.iter().zip(&b2.reports).zip(&fresh.reports) {
        assert_eq!(ra.x, rb.x);
        assert_eq!(ra.x, rf.x);
        assert_eq!(ra.timings.total, rb.timings.total);
        assert_eq!(ra.events, rf.events);
    }
}

/// The engine-backed multi-RHS accounting still amortizes: shared
/// analysis beats per-solve analysis.
#[test]
fn batch_total_amortizes_versus_unamortized() {
    let m = gen::level_structured(&LevelSpec::new(800, 16, 3200, 5));
    let bs: Vec<Vec<f64>> = (0..6).map(|k| verify::rhs_for(&m, 40 + k).1).collect();
    let opts = SolveOptions { kind: SolverKind::Unified, ..Default::default() };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let multi = engine.solve_batch(&bs).unwrap();
    assert!(multi.total < multi.unamortized_total());
}

/// Property (the fused-panel contract): for random systems, every
/// solver kind, both triangles and batch sizes that do and do not
/// divide the panel width (including K = 1), `solve_into`,
/// `solve_panel_into` and `solve_batch_into` are all **bit-identical**
/// to per-RHS `SolverEngine::solve`.
#[test]
fn panel_and_into_paths_bit_identical_to_solve_for_all_kinds() {
    for case in 0..3u64 {
        let mut rng = Pcg32::seed_from_u64(0xFA7ED + case);
        let n = 200 + rng.next_below(500) as usize;
        let lower =
            gen::level_structured(&LevelSpec::new(n, (n / 11).max(1), n * 4, rng.next_u64()));
        let upper = lower.transpose();
        for (m, tri) in [(&lower, Triangle::Lower), (&upper, Triangle::Upper)] {
            for kind in all_kinds() {
                let opts = SolveOptions { kind, triangle: tri, ..SolveOptions::default() };
                let engine = SolverEngine::build(m, MachineConfig::dgx1(4), &opts).unwrap();
                // 1, 5 and 13 exercise the K=1 block, a 4+1 ragged tail
                // and an 8+4+1 decomposition of the panel width
                for batch in [1usize, 5, 13] {
                    let bs: Vec<Vec<f64>> =
                        (0..batch as u64).map(|k| verify::rhs_for(m, 3000 + k).1).collect();
                    let expect: Vec<Vec<f64>> =
                        bs.iter().map(|b| engine.solve(b).unwrap().x).collect();

                    let mut ws = SolveWorkspace::new();
                    let mut out = vec![0.0f64; n];
                    engine.solve_into(&bs[0], &mut out, &mut ws).unwrap();
                    assert_eq!(out, expect[0], "{kind:?}/{tri:?}: solve_into bits");

                    let mut outs: Vec<Vec<f64>> = vec![Vec::new(); batch];
                    engine.solve_panel_into(&bs, &mut outs, &mut ws).unwrap();
                    assert_eq!(outs, expect, "{kind:?}/{tri:?} batch={batch}: panel bits");

                    let mut batch_outs: Vec<Vec<f64>> = vec![Vec::new(); batch];
                    engine.solve_batch_into(&bs, &mut batch_outs).unwrap();
                    assert_eq!(batch_outs, expect, "{kind:?}/{tri:?} batch={batch}: batch bits");
                }
            }
        }
    }
}

/// A bad right-hand side anywhere in the batch fails fast — before any
/// chunk has been handed to a worker — with the offending length.
#[test]
fn batch_rejects_bad_dimensions_up_front() {
    let m = gen::level_structured(&LevelSpec::new(600, 12, 2400, 9));
    let mut bs: Vec<Vec<f64>> = (0..8).map(|k| verify::rhs_for(&m, k).1).collect();
    bs[6] = vec![1.0, 2.0, 3.0]; // wrong length, late in the batch
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &SolveOptions::default()).unwrap();
    for threads in [1usize, 4] {
        let err = engine.solve_batch_with_threads(&bs, threads).unwrap_err();
        assert!(
            matches!(err, sptrsv::SolveError::DimensionMismatch { n: 600, rhs: 3, .. }),
            "threads={threads}: {err:?}"
        );
    }
    let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
    let err = engine.solve_batch_into(&bs, &mut outs).unwrap_err();
    assert!(matches!(err, sptrsv::SolveError::DimensionMismatch { n: 600, rhs: 3, .. }));
}

/// Regression: a batch whose `outs` does not hold one vector per
/// right-hand side used to `assert_eq!`-panic across the public API;
/// it must be a typed error on every batch entry point.
#[test]
fn mismatched_output_count_is_an_error_not_a_panic() {
    let m = gen::level_structured(&LevelSpec::new(500, 10, 2000, 13));
    let bs: Vec<Vec<f64>> = (0..6).map(|k| verify::rhs_for(&m, k).1).collect();
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &SolveOptions::default()).unwrap();
    let mut ws = SolveWorkspace::new();

    let mut too_few: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let err = engine.solve_batch_into(&bs, &mut too_few).unwrap_err();
    assert!(matches!(err, sptrsv::SolveError::OutputLength { n: 6, out: 4, .. }), "{err:?}");
    let err = engine.solve_panel_into(&bs, &mut too_few, &mut ws).unwrap_err();
    assert!(matches!(err, sptrsv::SolveError::OutputLength { n: 6, out: 4, .. }), "{err:?}");

    let mut too_many: Vec<Vec<f64>> = vec![Vec::new(); 9];
    let err = engine.solve_batch_into(&bs, &mut too_many).unwrap_err();
    assert!(matches!(err, sptrsv::SolveError::OutputLength { n: 6, out: 9, .. }), "{err:?}");

    // the error message names both counts so the caller knows which
    // argument to fix
    let msg = err.to_string();
    assert!(msg.contains('6') && msg.contains('9'), "{msg}");

    // and the engine still works afterwards
    let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
    engine.solve_batch_into(&bs, &mut outs).unwrap();
    for (o, b) in outs.iter().zip(&bs) {
        assert_eq!(o, &engine.solve(b).unwrap().x);
    }
}

/// New values on the recorded structure: scale every entry by a
/// position-dependent factor so no two refreshes are alike and no
/// diagonal is zeroed.
fn perturbed(m: &sparsemat::CscMatrix) -> sparsemat::CscMatrix {
    let mut m2 = m.clone();
    for (i, v) in m2.values_mut().iter_mut().enumerate() {
        *v *= 1.0 + ((i % 7) as f64) * 0.01;
    }
    m2
}

/// The tentpole contract: after `refresh_values(&m2)`, every warm tier
/// — plain solve, `solve_into`, the sharded level-parallel solve, the
/// fused panel and the pooled batch — is **bit-identical** to a cold
/// engine built from `m2`, for representative engine kinds and both
/// triangles.
#[test]
fn refresh_matches_cold_rebuild_across_all_tiers_and_triangles() {
    let lower = gen::level_structured(&LevelSpec::new(500, 14, 2000, 21));
    let upper = lower.transpose();
    for (m, tri) in [(&lower, Triangle::Lower), (&upper, Triangle::Upper)] {
        let m2 = perturbed(m);
        for kind in [SolverKind::Serial, SolverKind::LevelSet, SolverKind::ZeroCopy { per_gpu: 8 }]
        {
            let opts = SolveOptions { kind, triangle: tri, ..SolveOptions::default() };
            let warm = SolverEngine::build(m, MachineConfig::dgx1(4), &opts).unwrap();
            let _ = warm.solve(&verify::rhs_for(m, 1).1).unwrap(); // serve the old epoch first
            let report = warm.refresh_values(&m2).unwrap();
            assert_eq!(report.value_epoch, 1, "{kind:?}/{tri:?}: first refresh is epoch 1");
            assert_eq!(warm.value_epoch(), 1);
            assert_eq!(report.n, m2.n());
            assert_eq!(report.nnz, m2.nnz());
            assert!(report.audit.is_clean());

            let cold = SolverEngine::build(&m2, MachineConfig::dgx1(4), &opts).unwrap();
            let bs: Vec<Vec<f64>> = (0..5).map(|k| verify::rhs_for(m, 5000 + k).1).collect();
            let expect: Vec<Vec<f64>> = bs.iter().map(|b| cold.solve(b).unwrap().x).collect();

            for (b, e) in bs.iter().zip(&expect) {
                assert_eq!(&warm.solve(b).unwrap().x, e, "{kind:?}/{tri:?}: solve bits");
            }
            let mut ws = SolveWorkspace::new();
            let mut out = vec![0.0f64; m.n()];
            warm.solve_into(&bs[0], &mut out, &mut ws).unwrap();
            assert_eq!(out, expect[0], "{kind:?}/{tri:?}: solve_into bits");
            warm.solve_sharded_into(&bs[0], &mut out, &mut ws, 3).unwrap();
            assert_eq!(out, expect[0], "{kind:?}/{tri:?}: sharded bits");
            let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
            warm.solve_panel_into(&bs, &mut outs, &mut ws).unwrap();
            assert_eq!(outs, expect, "{kind:?}/{tri:?}: panel bits");
            let mut batch_outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
            warm.solve_batch_into(&bs, &mut batch_outs).unwrap();
            assert_eq!(batch_outs, expect, "{kind:?}/{tri:?}: batch bits");

            // a second refresh back to the original values round-trips
            let report = warm.refresh_values(m).unwrap();
            assert_eq!(report.value_epoch, 2);
            let original = SolverEngine::build(m, MachineConfig::dgx1(4), &opts).unwrap();
            assert_eq!(
                warm.solve(&bs[0]).unwrap().x,
                original.solve(&bs[0]).unwrap().x,
                "{kind:?}/{tri:?}: round-trip bits"
            );
        }
    }
}

/// Value refresh is analysis-free: no level-set analyses, no plan
/// builds, no exec adjacency construction anywhere in the refresh —
/// the same counters the warm-solve contract is proved with.
#[test]
fn refresh_performs_zero_symbolic_work() {
    let m = gen::level_structured(&LevelSpec::new(1200, 24, 4800, 31));
    let m2 = perturbed(&m);
    for kind in [SolverKind::Serial, SolverKind::LevelSet, SolverKind::ZeroCopy { per_gpu: 8 }] {
        let opts = SolveOptions { kind, ..SolveOptions::default() };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let levels = sparsemat::levels::analyze_invocations();
        let plans = plan::build_invocations();
        let execs = exec::analysis_builds();
        for swap in [&m2, &m, &m2] {
            engine.refresh_values(swap).unwrap();
        }
        assert_eq!(sparsemat::levels::analyze_invocations(), levels, "{kind:?}: levels rebuilt");
        assert_eq!(plan::build_invocations(), plans, "{kind:?}: plan rebuilt");
        assert_eq!(exec::analysis_builds(), execs, "{kind:?}: adjacency rebuilt");
    }
}

/// Structure drift is a typed rejection carrying both structure
/// hashes, and the engine keeps serving the old values bit-identically
/// — the strong exception guarantee.
#[test]
fn refresh_rejects_structure_drift_and_keeps_old_values() {
    let m = gen::level_structured(&LevelSpec::new(400, 10, 1600, 41));
    let other = gen::banded_lower(400, 6, 3.0, 41); // same n, different pattern
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(2), &SolveOptions::default()).unwrap();
    let (_, b) = verify::rhs_for(&m, 9);
    let before = engine.solve(&b).unwrap().x;

    let err = engine.refresh_values(&other).unwrap_err();
    match err {
        sptrsv::SolveError::StructureMismatch { expected, got } => {
            assert_ne!(expected, got, "the two hashes must name different structures");
        }
        e => panic!("expected StructureMismatch, got {e:?}"),
    }
    assert_eq!(engine.value_epoch(), 0, "a rejected refresh must not bump the epoch");
    assert_eq!(engine.solve(&b).unwrap().x, before, "old values must keep serving");
}

/// Non-finite entries and zero pivots are rejected by the same audit a
/// cold build runs, before any mutation — old state intact, typed
/// error out.
#[test]
fn refresh_rejects_bad_values_and_keeps_old_state() {
    let m = gen::level_structured(&LevelSpec::new(300, 8, 1200, 51));
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(2), &SolveOptions::default()).unwrap();
    let (_, b) = verify::rhs_for(&m, 3);
    let before = engine.solve(&b).unwrap().x;

    let mut poisoned = m.clone();
    let mid = poisoned.nnz() / 2;
    poisoned.values_mut()[mid] = f64::NAN;
    let err = engine.refresh_values(&poisoned).unwrap_err();
    assert!(
        matches!(err, sptrsv::SolveError::Matrix(sparsemat::MatrixError::NonFiniteValue { .. })),
        "{err:?}"
    );

    let mut singular = m.clone();
    singular.values_mut()[0] = 0.0; // first entry of column 0 is its diagonal
    let err = engine.refresh_values(&singular).unwrap_err();
    assert!(
        matches!(err, sptrsv::SolveError::Matrix(sparsemat::MatrixError::ZeroDiagonal { .. })),
        "{err:?}"
    );

    assert_eq!(engine.value_epoch(), 0);
    assert_eq!(engine.solve(&b).unwrap().x, before, "old values must keep serving");
}

/// Batched solves reuse one persistent pool: repeated calls leave the
/// worker count unchanged, and results stay deterministic.
#[test]
fn repeated_batches_share_the_worker_pool() {
    let m = gen::level_structured(&LevelSpec::new(900, 20, 3600, 17));
    let bs: Vec<Vec<f64>> = (0..24).map(|k| verify::rhs_for(&m, 70 + k).1).collect();
    let opts = SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let first = engine.solve_batch_with_threads(&bs, 4).unwrap();
    let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
    for _ in 0..3 {
        engine.solve_batch_into(&bs, &mut outs).unwrap();
        for (o, r) in outs.iter().zip(&first.reports) {
            assert_eq!(o, &r.x, "pool reuse must not perturb results");
        }
    }
}
