//! Build-once/solve-many engine contract tests:
//!
//! 1. `engine.solve(&b)` is **bit-identical** to one-shot
//!    `solve(&l, &b, …)` for every `SolverKind` variant — same
//!    solution bits, same virtual timings, same event counts.
//! 2. Warm solves perform zero analysis construction (level sets,
//!    plans, adjacency), checked against the per-thread counters.
//! 3. Two `solve_batch` calls on one engine are deterministic across
//!    runs and across worker counts.
//!
//! Cases are drawn from a deterministic PCG32 (proptest is unavailable
//! offline).

use desim::Pcg32;
use mgpu_sim::MachineConfig;
use sparsemat::gen::{self, LevelSpec};
use sptrsv::{exec, plan, solve, verify, SolveOptions, SolverEngine, SolverKind};

fn all_kinds() -> Vec<SolverKind> {
    vec![
        SolverKind::Serial,
        SolverKind::LevelSet,
        SolverKind::SyncFree,
        SolverKind::Unified,
        SolverKind::UnifiedTasks { per_gpu: 8 },
        SolverKind::ShmemBlocked,
        SolverKind::ShmemNaive,
        SolverKind::ZeroCopy { per_gpu: 8 },
        SolverKind::ZeroCopyTotal { total: 32 },
    ]
}

/// Property: for random systems and every variant, a warm engine solve
/// reproduces the one-shot path bit for bit.
#[test]
fn engine_solve_bit_identical_to_one_shot_for_all_kinds() {
    for case in 0..6u64 {
        let mut rng = Pcg32::seed_from_u64(0xE9612E + case);
        let n = 200 + rng.next_below(600) as usize;
        let m = gen::level_structured(&LevelSpec::new(
            n,
            (n / 13).max(1),
            n * 4,
            rng.next_u64(),
        ));
        let (_, b) = verify::rhs_for(&m, rng.next_u64());
        for kind in all_kinds() {
            let opts = SolveOptions { kind, ..SolveOptions::default() };
            let one_shot = solve(&m, &b, MachineConfig::dgx1(4), &opts)
                .unwrap_or_else(|e| panic!("one-shot {kind:?}: {e}"));
            let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
            // discard one warm-up solve so the second one is maximally warm
            let _ = engine.solve(&b).unwrap();
            let warm = engine.solve(&b).unwrap();
            assert_eq!(one_shot.x, warm.x, "case {case} {kind:?}: x bits");
            assert_eq!(one_shot.timings.total, warm.timings.total, "case {case} {kind:?}");
            assert_eq!(one_shot.timings.analysis, warm.timings.analysis, "case {case} {kind:?}");
            assert_eq!(one_shot.events, warm.events, "case {case} {kind:?}");
            assert_eq!(one_shot.cross_edges, warm.cross_edges, "case {case} {kind:?}");
            assert_eq!(one_shot.kernels, warm.kernels, "case {case} {kind:?}");
        }
    }
}

/// Warm solves construct nothing: no level-set analyses, no plans, no
/// exec adjacency builds — across every variant.
#[test]
fn warm_solves_never_reanalyze() {
    let m = gen::level_structured(&LevelSpec::new(1500, 30, 6000, 77));
    let (_, b) = verify::rhs_for(&m, 7);
    for kind in all_kinds() {
        let opts = SolveOptions { kind, ..SolveOptions::default() };
        let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
        let levels = sparsemat::levels::analyze_invocations();
        let plans = plan::build_invocations();
        let execs = exec::analysis_builds();
        for _ in 0..3 {
            engine.solve(&b).unwrap();
        }
        // opts.verify = true runs the serial reference per solve, which
        // must not analyze either
        assert_eq!(sparsemat::levels::analyze_invocations(), levels, "{kind:?}: levels rebuilt");
        assert_eq!(plan::build_invocations(), plans, "{kind:?}: plan rebuilt");
        assert_eq!(exec::analysis_builds(), execs, "{kind:?}: adjacency rebuilt");
    }
}

/// Two `solve_batch` calls on one engine agree with each other and
/// with a fresh engine, whatever the thread count.
#[test]
fn solve_batch_deterministic_across_runs() {
    let m = gen::level_structured(&LevelSpec::new(1000, 25, 4000, 3));
    let bs: Vec<Vec<f64>> = (0..12).map(|k| verify::rhs_for(&m, 900 + k).1).collect();
    let opts = SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let a = engine.solve_batch(&bs).unwrap();
    let b2 = engine.solve_batch(&bs).unwrap();
    let fresh = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts)
        .unwrap()
        .solve_batch_with_threads(&bs, 2)
        .unwrap();
    assert_eq!(a.total, b2.total);
    assert_eq!(a.total, fresh.total);
    assert_eq!(a.reports.len(), bs.len());
    for ((ra, rb), rf) in a.reports.iter().zip(&b2.reports).zip(&fresh.reports) {
        assert_eq!(ra.x, rb.x);
        assert_eq!(ra.x, rf.x);
        assert_eq!(ra.timings.total, rb.timings.total);
        assert_eq!(ra.events, rf.events);
    }
}

/// The engine-backed multi-RHS accounting still amortizes: shared
/// analysis beats per-solve analysis.
#[test]
fn batch_total_amortizes_versus_unamortized() {
    let m = gen::level_structured(&LevelSpec::new(800, 16, 3200, 5));
    let bs: Vec<Vec<f64>> = (0..6).map(|k| verify::rhs_for(&m, 40 + k).1).collect();
    let opts = SolveOptions { kind: SolverKind::Unified, ..Default::default() };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let multi = engine.solve_batch(&bs).unwrap();
    assert!(multi.total < multi.unamortized_total());
}
