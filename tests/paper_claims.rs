//! The paper's qualitative claims, asserted as integration tests.
//! Every run is deterministic, so these are stable regression tests of
//! the reproduced evaluation shapes (EXPERIMENTS.md holds the
//! quantitative tables).

use mgpu_sptrsv::prelude::*;
use sparsemat::corpus;

const ROW_CAP: usize = 4_000;
const NNZ_CAP: usize = 80_000;

fn load(name: &str) -> sparsemat::NamedMatrix {
    corpus::by_name_scaled(name, ROW_CAP, NNZ_CAP).expect("corpus matrix")
}

fn run(nm: &sparsemat::NamedMatrix, cfg: MachineConfig, kind: SolverKind) -> SolveReport {
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0xC1A1);
    sptrsv::solve(&nm.matrix, &b, cfg, &SolveOptions { kind, ..Default::default() })
        .unwrap_or_else(|e| panic!("{} {kind:?}: {e}", nm.name))
}

/// §VI-B / Fig. 7: the zero-copy design beats the Unified-Memory design
/// on a 4-GPU DGX-1 — by a lot on high-parallelism matrices.
#[test]
fn fig7_zero_copy_beats_unified() {
    for name in ["nlpkkt160", "powersim", "dc2", "Wordnet3"] {
        let nm = load(name);
        let unified = run(&nm, MachineConfig::dgx1(4), SolverKind::Unified);
        let zerocopy = run(&nm, MachineConfig::dgx1(4), SolverKind::ZeroCopy { per_gpu: 8 });
        let s = zerocopy.speedup_over(&unified);
        assert!(s > 1.5, "{name}: zerocopy speedup only {s:.2}");
    }
}

/// §VI-B / Fig. 7: imposing the task model on Unified Memory makes it
/// *slower* (more page contention), unlike on NVSHMEM.
#[test]
fn fig7_tasks_hurt_unified_but_help_zero_copy() {
    let nm = load("powersim");
    let unified = run(&nm, MachineConfig::dgx1(4), SolverKind::Unified);
    let unified_tasks = run(&nm, MachineConfig::dgx1(4), SolverKind::UnifiedTasks { per_gpu: 8 });
    assert!(
        unified_tasks.timings.total > unified.timings.total,
        "tasks must increase UM contention"
    );
    // The task benefit needs enough per-GPU work to amortize the extra
    // kernel launches (the Fig. 9 trade-off): the crossover sits near
    // n ≈ 6k at 8 tasks/GPU, so test above it with the
    // high-parallelism matrix, as the paper's Fig. 7 does.
    let nm = sparsemat::corpus::by_name_scaled("nlpkkt160", 10_000, 200_000).unwrap();
    let shmem = run(&nm, MachineConfig::dgx1(4), SolverKind::ShmemBlocked);
    let zerocopy = run(&nm, MachineConfig::dgx1(4), SolverKind::ZeroCopy { per_gpu: 8 });
    assert!(zerocopy.timings.total < shmem.timings.total, "tasks must improve the NVSHMEM design");
}

/// §III / Fig. 3a: UM page-fault counts grow with the number of GPUs.
#[test]
fn fig3_fault_counts_grow_with_gpus() {
    let nm = load("pkustk14");
    let f: Vec<u64> = [2usize, 4, 8]
        .iter()
        .map(|&g| run(&nm, MachineConfig::dgx1(g), SolverKind::Unified).stats.total_um_faults())
        .collect();
    assert!(f[0] < f[1] && f[1] < f[2], "fault growth violated: {f:?}");
}

/// §III / Fig. 3b: UM performance collapses at 8 GPUs (host-staged
/// routes for non-P2P pairs).
#[test]
fn fig3_unified_collapses_at_eight_gpus() {
    let nm = load("belgium_osm");
    let four = run(&nm, MachineConfig::dgx1(4), SolverKind::Unified);
    let eight = run(&nm, MachineConfig::dgx1(8), SolverKind::Unified);
    assert!(
        eight.timings.total.as_ns() > 2 * four.timings.total.as_ns(),
        "8-GPU UM must be far slower: {} vs {}",
        eight.timings.total,
        four.timings.total
    );
}

/// §II-B: the level-set baseline collapses on deep level structures;
/// sync-free does not.
#[test]
fn csrsv2_pays_per_level_synchronization() {
    let chain = sparsemat::gen::chain(3_000);
    let wide =
        sparsemat::gen::level_structured(&sparsemat::gen::LevelSpec::new(3_000, 3, chain.nnz(), 9));
    let nmc = |m: sparsemat::CscMatrix| sparsemat::NamedMatrix {
        name: "synthetic",
        class: "synthetic",
        achieved: sparsemat::levels::TriStats::compute(&m, Triangle::Lower),
        paper: sparsemat::PaperStats { rows: 0, nnz: 0, levels: 0, parallelism: 0.0 },
        matrix: m,
    };
    let deep = run(&nmc(chain), MachineConfig::dgx1(1), SolverKind::LevelSet);
    let shallow = run(&nmc(wide), MachineConfig::dgx1(1), SolverKind::LevelSet);
    assert!(
        deep.timings.total.as_ns() > 10 * shallow.timings.total.as_ns(),
        "deep {} vs shallow {}",
        deep.timings.total,
        shallow.timings.total
    );
}

/// §VI-D / Fig. 10: matrices with high parallelism and low dependency
/// scale best with GPU count.
#[test]
fn fig10_parallelism_governs_scaling() {
    let parallel = load("nlpkkt160"); // 2 levels
    let serial = load("chipcool0"); // hundreds of levels, par 38
    let gain = |nm: &sparsemat::NamedMatrix| {
        let one = run(nm, MachineConfig::dgx1(1), SolverKind::ZeroCopyTotal { total: 32 });
        let four = run(nm, MachineConfig::dgx1(4), SolverKind::ZeroCopyTotal { total: 32 });
        four.speedup_over(&one)
    };
    let gp = gain(&parallel);
    let gs = gain(&serial);
    assert!(gp > gs, "parallel matrix must scale better: {gp:.2} vs {gs:.2}");
    assert!(gp > 2.0, "nlpkkt160 should scale well, got {gp:.2}");
}

/// §VI-B / Fig. 8: zero-copy achieves similar speedups on DGX-1 and
/// DGX-2 at 4 GPUs (communication is overlapped with computation).
#[test]
fn fig8_dgx1_and_dgx2_are_comparable_at_four_gpus() {
    let nm = load("dblp-2010");
    let d1 = run(&nm, MachineConfig::dgx1(4), SolverKind::ZeroCopy { per_gpu: 8 });
    let d2 = run(&nm, MachineConfig::dgx2(4), SolverKind::ZeroCopy { per_gpu: 8 });
    let ratio = d1.timings.total.as_ns() as f64 / d2.timings.total.as_ns() as f64;
    assert!((0.6..1.7).contains(&ratio), "DGX-1/DGX-2 ratio {ratio:.2} out of range");
}

/// §IV-B: the r.in_degree caching optimization reduces poll traffic.
#[test]
fn poll_caching_saves_interconnect_traffic() {
    let nm = load("dblp-2010");
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0xCAFE);
    let base = SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() };
    let cached = sptrsv::solve(&nm.matrix, &b, MachineConfig::dgx1(4), &base).unwrap();
    let raw = sptrsv::solve(
        &nm.matrix,
        &b,
        MachineConfig::dgx1(4),
        &SolveOptions { poll_caching: false, ..base },
    )
    .unwrap();
    assert!(cached.stats.shmem.poll_gets < raw.stats.shmem.poll_gets);
    assert!(cached.stats.shmem.poll_gets_saved > 0);
}

/// §V: round-robin tasks spread early components across all GPUs,
/// fixing the unidirectional-waiting pathology of blocked layouts.
#[test]
fn task_pool_balances_exec_time_across_gpus() {
    let nm = load("nlpkkt160");
    let blocked = run(&nm, MachineConfig::dgx1(4), SolverKind::ShmemBlocked);
    let tasks = run(&nm, MachineConfig::dgx1(4), SolverKind::ZeroCopy { per_gpu: 8 });
    let imbalance = |r: &SolveReport| {
        let b = &r.stats.exec_busy_ns;
        let max = *b.iter().max().unwrap() as f64;
        let min = *b.iter().min().unwrap() as f64;
        max / min.max(1.0)
    };
    assert!(
        imbalance(&tasks) < imbalance(&blocked) || tasks.timings.total < blocked.timings.total,
        "task pool must improve balance or makespan"
    );
}
