//! End-to-end preconditioned Krylov workflow through the facade crate:
//! SPD system → ILU(0) factorization → `PreconditionerEngine` (two
//! warm engines on one shared pool) → PCG/BiCGSTAB to convergence —
//! the paper's §I workload, assembled exactly the way a user of
//! `mgpu-sptrsv` would.

use mgpu_sptrsv::prelude::*;
use sptrsv::krylov::{bicgstab, pcg, KrylovOptions, PreconditionerEngine};

fn krylov_opts() -> KrylovOptions {
    KrylovOptions { max_iterations: 500, rel_tol: 1e-8 }
}

fn engine_opts() -> SolveOptions {
    SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    }
}

#[test]
fn pcg_with_ilu0_preconditioner_end_to_end() {
    let a = sparsemat::gen::grid_laplacian(64, 48);
    let f = sparsemat::factor::ilu0(&a, 1e-8).unwrap();
    let pre = PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(4), &engine_opts()).unwrap();
    let (_, b) = sptrsv::verify::rhs_for(&a, 21);
    let rep = pcg(&a, &b, &pre, &krylov_opts()).unwrap();
    assert!(rep.converged, "stalled at {:.3e}", rep.final_rel_residual());
    assert!(rep.final_rel_residual() <= 1e-8);
    assert!(sptrsv::verify::rel_residual(&a, &rep.x, &b) <= 1e-6);
    // the history must be monotone-ish: the last entry is the smallest
    let last = rep.final_rel_residual();
    assert!(rep.residual_history.iter().all(|&h| h >= last));
    // every iteration applied the preconditioner against the SAME
    // engines; their calibration reports price each warm application
    let cal = pre.forward().calibration().expect("simulated engine");
    assert!(cal.timings.total.as_ns() > 0);
}

#[test]
fn preconditioning_accelerates_convergence() {
    // PCG with ILU(0) must converge in far fewer iterations than with
    // the do-nothing identity preconditioner (I = L·U with L = U = I) —
    // the reason the paper's workload applies SpTRSV at all.
    let a = sparsemat::gen::spd_banded(1_200, 14, 5.0, 3);
    let f = sparsemat::factor::ilu0(&a, 1e-8).unwrap();
    let ilu = PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(4), &engine_opts()).unwrap();
    let eye = CscMatrix::identity(a.n());
    let none =
        PreconditionerEngine::build(&eye, &eye, MachineConfig::dgx1(4), &engine_opts()).unwrap();
    let (_, b) = sptrsv::verify::rhs_for(&a, 13);
    let with = pcg(&a, &b, &ilu, &krylov_opts()).unwrap();
    let without = pcg(&a, &b, &none, &krylov_opts()).unwrap();
    assert!(with.converged);
    assert!(
        !without.converged || with.iterations * 2 <= without.iterations,
        "ILU(0) must at least halve the iteration count: {} vs {}",
        with.iterations,
        without.iterations
    );
}

#[test]
fn bicgstab_with_ilu0_end_to_end() {
    // tril/triu of the SPD operator itself (the tril(A) trick) also
    // works as a preconditioner and exercises non-unit lower factors
    let a = sparsemat::gen::grid_laplacian(40, 40);
    let l = a.triangular_part(Triangle::Lower, 1.0);
    let u = a.triangular_part(Triangle::Upper, 1.0);
    let pre = PreconditionerEngine::build(&l, &u, MachineConfig::dgx1(4), &engine_opts()).unwrap();
    let (_, b) = sptrsv::verify::rhs_for(&a, 8);
    let rep = bicgstab(&a, &b, &pre, &krylov_opts()).unwrap();
    assert!(rep.converged, "stalled at {:.3e}", rep.final_rel_residual());
    assert!(sptrsv::verify::rel_residual(&a, &rep.x, &b) <= 1e-6);
}
