//! Cross-crate integration tests: corpus generation → machine
//! simulation → verified solutions, across every solver variant,
//! machine, triangle and partition.

use mgpu_sptrsv::prelude::*;
use sparsemat::corpus;

const ROW_CAP: usize = 3_000;
const NNZ_CAP: usize = 60_000;

fn load(name: &str) -> sparsemat::NamedMatrix {
    corpus::by_name_scaled(name, ROW_CAP, NNZ_CAP).expect("corpus matrix")
}

fn all_kinds() -> Vec<SolverKind> {
    vec![
        SolverKind::Serial,
        SolverKind::LevelSet,
        SolverKind::SyncFree,
        SolverKind::Unified,
        SolverKind::UnifiedTasks { per_gpu: 8 },
        SolverKind::ShmemBlocked,
        SolverKind::ZeroCopy { per_gpu: 8 },
        SolverKind::ZeroCopyTotal { total: 32 },
    ]
}

#[test]
fn every_variant_verifies_on_representative_corpus() {
    for name in ["powersim", "nlpkkt160", "chipcool0", "twitter7"] {
        let nm = load(name);
        let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 1);
        for kind in all_kinds() {
            let r = sptrsv::solve(
                &nm.matrix,
                &b,
                MachineConfig::dgx1(4),
                &SolveOptions { kind, ..Default::default() },
            )
            .unwrap_or_else(|e| panic!("{kind:?} on {name}: {e}"));
            assert!(
                r.verified_rel_err.unwrap() < 1e-8,
                "{kind:?} on {name}: err {}",
                r.verified_rel_err.unwrap()
            );
        }
    }
}

#[test]
fn full_corpus_zero_copy_runs_verified() {
    for nm in corpus::corpus_scaled(ROW_CAP, NNZ_CAP) {
        let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 2);
        let r = sptrsv::solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", nm.name));
        assert!(r.verified_rel_err.unwrap() < 1e-8, "{}", nm.name);
        assert!(r.timings.total > SimTime::ZERO);
    }
}

#[test]
fn dgx2_scales_to_sixteen_gpus() {
    let nm = load("nlpkkt160");
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 3);
    let mut prev_total = u64::MAX;
    for gpus in [1usize, 4, 16] {
        let r = sptrsv::solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx2(gpus),
            &SolveOptions { kind: SolverKind::ZeroCopyTotal { total: 32 }, ..Default::default() },
        )
        .unwrap();
        assert!(r.verified_rel_err.unwrap() < 1e-8);
        assert!(
            r.timings.total.as_ns() < prev_total,
            "nlpkkt160 must scale on DGX-2 at {gpus} GPUs"
        );
        prev_total = r.timings.total.as_ns();
    }
}

#[test]
fn upper_triangular_systems_solve_on_every_backend() {
    let l = load("powersim").matrix;
    let u = l.transpose();
    let (_, b) = sptrsv::verify::rhs_for(&u, 4);
    let reference = sptrsv::reference::solve_upper(&u, &b).unwrap();
    for kind in [SolverKind::LevelSet, SolverKind::Unified, SolverKind::ZeroCopy { per_gpu: 8 }] {
        let r = sptrsv::solve(
            &u,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind, triangle: Triangle::Upper, ..Default::default() },
        )
        .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert!(sptrsv::verify::rel_inf_diff(&r.x, &reference) < 1e-8, "{kind:?}");
    }
}

#[test]
fn runs_are_bit_deterministic() {
    let nm = load("dc2");
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 5);
    let run = || {
        sptrsv::solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() },
        )
        .unwrap()
    };
    let a = run();
    let c = run();
    assert_eq!(a.timings.total, c.timings.total);
    assert_eq!(a.events, c.events);
    assert_eq!(a.x, c.x);
    assert_eq!(a.stats.shmem.total_gets(), c.stats.shmem.total_gets());
}

#[test]
fn nvshmem_variants_refuse_non_p2p_machines() {
    let nm = load("powersim");
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 6);
    // 8 DGX-1 GPUs are not all-pairs P2P: the paper's own limit.
    let err = sptrsv::solve(
        &nm.matrix,
        &b,
        MachineConfig::dgx1(8),
        &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() },
    )
    .unwrap_err();
    assert!(matches!(err, sptrsv::SolveError::NotP2p { gpus: 8 }));
    // ... but unified memory still works there (host staging).
    sptrsv::solve(
        &nm.matrix,
        &b,
        MachineConfig::dgx1(8),
        &SolveOptions { kind: SolverKind::Unified, ..Default::default() },
    )
    .unwrap();
}

#[test]
fn matrix_market_roundtrip_preserves_solutions() {
    let nm = load("Wordnet3");
    let mut buf = Vec::new();
    sparsemat::io::write_matrix_market(&nm.matrix, &mut buf).unwrap();
    let reread = sparsemat::io::read_matrix_market(buf.as_slice()).unwrap();
    assert_eq!(reread, nm.matrix);

    let (_, b) = sptrsv::verify::rhs_for(&reread, 7);
    let r = sptrsv::solve(&reread, &b, MachineConfig::dgx1(2), &SolveOptions::default()).unwrap();
    assert!(r.verified_rel_err.unwrap() < 1e-8);
}

#[test]
fn ilu0_factors_solve_end_to_end() {
    let a = sparsemat::gen::grid_laplacian(40, 30);
    let f = sparsemat::factor::ilu0(&a, 1e-8).unwrap();
    let (_, r) = sptrsv::verify::rhs_for(&f.l, 8);
    let fwd = sptrsv::solve(
        &f.l,
        &r,
        MachineConfig::dgx1(4),
        &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 4 }, ..Default::default() },
    )
    .unwrap();
    let bwd = sptrsv::solve(
        &f.u,
        &fwd.x,
        MachineConfig::dgx1(4),
        &SolveOptions {
            kind: SolverKind::ZeroCopy { per_gpu: 4 },
            triangle: Triangle::Upper,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(bwd.verified_rel_err.unwrap() < 1e-8);
}
