//! # mgpu-sptrsv — a fast and scalable sparse triangular solver for multi-GPU HPC architectures
//!
//! A complete, self-contained reproduction of *"Fast and Scalable
//! Sparse Triangular Solver for Multi-GPU Based HPC Architectures"*
//! (ICPP 2021, arXiv:2012.06959) in safe Rust. Because the paper's
//! testbed (V100 DGX-1/DGX-2, CUDA, NVSHMEM) is hardware we cannot
//! ship, the machine itself is reproduced as a deterministic
//! discrete-event model — every solver executes its real `f64`
//! numerics while virtual time advances through warp slots, NVLink
//! transfers, unified-memory page migrations and one-sided gets. See
//! `DESIGN.md` for the substitution table and `EXPERIMENTS.md` for the
//! paper-vs-measured comparison of every table and figure.
//!
//! ## Crates
//!
//! * [`desim`] — deterministic discrete-event engine (calendar,
//!   resources, gates, statistics, PCG32).
//! * [`sparsemat`] — CSC/CSR storage, level-set analysis, Matrix
//!   Market I/O, ILU(0), synthetic generators, the Table-I corpus.
//! * [`mgpu_sim`] — the machine: V100-class GPUs, DGX-1 cube-mesh /
//!   DGX-2 NVSwitch topologies, CUDA Unified Memory, NVSHMEM-style
//!   symmetric heap.
//! * [`sptrsv`] — the solvers: serial reference, level-set
//!   (csrsv2-style), sync-free single-GPU, Algorithm 2 (Unified
//!   Memory), Algorithm 3 (zero-copy NVSHMEM) and the §V task pool.
//!
//! ## Quickstart
//!
//! ```
//! use mgpu_sptrsv::prelude::*;
//!
//! // A lower-triangular system with a known solution.
//! let l = sparsemat::gen::level_structured(
//!     &sparsemat::gen::LevelSpec::new(2_000, 25, 8_000, 42));
//! let (x_true, b) = sptrsv::verify::rhs_for(&l, 7);
//!
//! // Solve with the paper's zero-copy design on a 4-GPU DGX-1.
//! let report = sptrsv::solve(
//!     &l,
//!     &b,
//!     MachineConfig::dgx1(4),
//!     &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() },
//! ).unwrap();
//!
//! assert!(sptrsv::verify::rel_inf_diff(&report.x, &x_true) < 1e-8);
//! println!("solved in {} with {} page faults and {} one-sided gets",
//!          report.timings.total,
//!          report.stats.total_um_faults(),
//!          report.stats.shmem.total_gets());
//! ```

pub use desim;
pub use mgpu_sim;
pub use sparsemat;
pub use sptrsv;

/// The names most programs need, in one import.
pub mod prelude {
    pub use desim::SimTime;
    pub use mgpu_sim::{GpuSpec, Machine, MachineConfig, TopologyKind};
    pub use sparsemat::{CscMatrix, CsrMatrix, LevelSets, Triangle, TripletBuilder};
    pub use sptrsv::{solve, Backend, Partition, SolveOptions, SolveReport, SolverKind};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_sufficient_for_a_solve() {
        let l = sparsemat::gen::banded_lower(256, 8, 3.0, 1);
        let (_, b) = sptrsv::verify::rhs_for(&l, 2);
        let r = solve(&l, &b, MachineConfig::dgx1(2), &SolveOptions::default()).unwrap();
        assert_eq!(r.x.len(), 256);
        assert!(r.verified_rel_err.unwrap() < 1e-8);
    }
}
