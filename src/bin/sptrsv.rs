//! `sptrsv` — command-line front end for the solver library.
//!
//! ```text
//! USAGE:
//!   sptrsv [INPUT] [OPTIONS]
//!
//! INPUT (one of):
//!   --mtx <file>         read a Matrix Market file, take tril(A)
//!   --corpus <name>      a Table-I analog (see --list)
//!   --grid <NX>x<NY>     ILU(0) L-factor of an NX*NY 5-point grid
//!   --chain <N>          the fully sequential worst case
//!   (default: --corpus powersim)
//!
//! OPTIONS:
//!   --solver <kind>      serial|csrsv2|syncfree|unified|unified-tasks|
//!                        shmem|shmem-gup|zerocopy|cpu   [zerocopy]
//!   --machine <m>        dgx1|dgx2                      [dgx1]
//!   --gpus <n>           GPUs to use                    \[4\]
//!   --tasks <n>          tasks per GPU (task-pool kinds) \[8\]
//!   --threads <n>        threads for --solver cpu       \[4\]
//!   --upper              solve Ux = b instead of Lx = b
//!   --scale <rows>       corpus row cap                 [12000]
//!   --list               print corpus names and exit
//! ```

use mgpu_sptrsv::prelude::*;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\nrun with --help for usage");
    ExitCode::FAILURE
}

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
    fn value(&self, name: &str) -> Option<&str> {
        self.0.iter().position(|a| a == name).and_then(|i| self.0.get(i + 1)).map(String::as_str)
    }
}

fn main() -> ExitCode {
    let args = Args(std::env::args().skip(1).collect());
    if args.flag("--help") || args.flag("-h") {
        // the module doc is the help text
        print!("{}", HELP);
        return ExitCode::SUCCESS;
    }
    if args.flag("--list") {
        for name in sparsemat::corpus::all_names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    let triangle = if args.flag("--upper") { Triangle::Upper } else { Triangle::Lower };
    let scale: usize = match args.value("--scale").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(12_000),
        Err(_) => return fail("--scale expects an integer"),
    };

    // --- input matrix ---------------------------------------------------
    let (label, mut matrix) = if let Some(path) = args.value("--mtx") {
        match sparsemat::io::read_matrix_market_file(std::path::Path::new(path)) {
            Ok(a) => (path.to_string(), a.triangular_part(triangle, 1.0)),
            Err(e) => return fail(&format!("reading {path}: {e}")),
        }
    } else if let Some(spec) = args.value("--grid") {
        let Some((nx, ny)) = spec.split_once('x') else {
            return fail("--grid expects NXxNY");
        };
        let (Ok(nx), Ok(ny)) = (nx.parse::<usize>(), ny.parse::<usize>()) else {
            return fail("--grid expects integers");
        };
        let a = sparsemat::gen::grid_laplacian(nx, ny);
        match sparsemat::factor::ilu0(&a, 1e-8) {
            Ok(f) => (
                format!("grid {nx}x{ny} ILU(0)"),
                if triangle == Triangle::Lower { f.l } else { f.u },
            ),
            Err(e) => return fail(&format!("factorization: {e}")),
        }
    } else if let Some(n) = args.value("--chain") {
        let Ok(n) = n.parse::<usize>() else {
            return fail("--chain expects an integer");
        };
        ("chain".to_string(), sparsemat::gen::chain(n))
    } else {
        let name = args.value("--corpus").unwrap_or("powersim");
        match sparsemat::corpus::by_name_scaled(name, scale, scale * 20) {
            Some(nm) => (name.to_string(), nm.matrix),
            None => return fail(&format!("unknown corpus matrix {name}; try --list")),
        }
    };
    if triangle == Triangle::Upper && matrix.is_lower_triangular() && !matrix.is_upper_triangular()
    {
        matrix = matrix.transpose();
    }

    let stats = sparsemat::levels::TriStats::compute(&matrix, triangle);
    println!(
        "{label}: n = {}, nnz = {}, levels = {}, parallelism = {:.1}, dependency = {:.2}",
        stats.rows, stats.nnz, stats.levels, stats.parallelism, stats.dependency
    );

    let (_, b) = sptrsv::verify::rhs_for(&matrix, 0xC11);

    // --- CPU solver path (wall clock, no simulation) -----------------------
    let solver = args.value("--solver").unwrap_or("zerocopy");
    if solver == "cpu" {
        let threads: usize = args.value("--threads").and_then(|v| v.parse().ok()).unwrap_or(4);
        let t0 = std::time::Instant::now();
        match sptrsv::cpu::solve_parallel(&matrix, &b, triangle, threads) {
            Ok(x) => {
                let dt = t0.elapsed();
                let expected = sptrsv::reference::solve_serial(&matrix, &b, triangle).unwrap();
                let err = sptrsv::verify::rel_inf_diff(&x, &expected);
                println!(
                    "cpu level-set solver: {threads} threads, {dt:?} wall clock, rel err {err:.2e}"
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => return fail(&format!("cpu solve: {e}")),
        }
    }

    // --- simulated GPU solvers ---------------------------------------------
    let gpus: usize = args.value("--gpus").and_then(|v| v.parse().ok()).unwrap_or(4);
    let tasks: u32 = args.value("--tasks").and_then(|v| v.parse().ok()).unwrap_or(8);
    let cfg = match args.value("--machine").unwrap_or("dgx1") {
        "dgx1" => MachineConfig::dgx1(gpus),
        "dgx2" => MachineConfig::dgx2(gpus),
        other => return fail(&format!("unknown machine {other}")),
    };
    let kind = match solver {
        "serial" => SolverKind::Serial,
        "csrsv2" | "levelset" => SolverKind::LevelSet,
        "syncfree" => SolverKind::SyncFree,
        "unified" => SolverKind::Unified,
        "unified-tasks" => SolverKind::UnifiedTasks { per_gpu: tasks },
        "shmem" => SolverKind::ShmemBlocked,
        "shmem-gup" => SolverKind::ShmemNaive,
        "zerocopy" => SolverKind::ZeroCopy { per_gpu: tasks },
        other => return fail(&format!("unknown solver {other}")),
    };

    match sptrsv::solve(&matrix, &b, cfg, &SolveOptions { kind, triangle, ..Default::default() }) {
        Ok(r) => {
            println!("{}", r.summary());
            println!(
                "verified rel err {:.2e} | cross edges {} | kernels {} | fits in memory: {}",
                r.verified_rel_err.unwrap_or(f64::NAN),
                r.cross_edges,
                r.kernels,
                r.fits_in_memory,
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

const HELP: &str = "sptrsv - multi-GPU sparse triangular solver (simulated DGX machines)

USAGE:
  sptrsv [INPUT] [OPTIONS]

INPUT (one of):
  --mtx <file>         read a Matrix Market file, take tril(A)
  --corpus <name>      a Table-I analog (see --list)
  --grid <NX>x<NY>     ILU(0) L-factor of an NX*NY 5-point grid
  --chain <N>          the fully sequential worst case
  (default: --corpus powersim)

OPTIONS:
  --solver <kind>      serial|csrsv2|syncfree|unified|unified-tasks|
                       shmem|shmem-gup|zerocopy|cpu   [zerocopy]
  --machine <m>        dgx1|dgx2                      [dgx1]
  --gpus <n>           GPUs to use                    [4]
  --tasks <n>          tasks per GPU (task-pool kinds) [8]
  --threads <n>        threads for --solver cpu       [4]
  --upper              solve Ux = b instead of Lx = b
  --scale <rows>       corpus row cap                 [12000]
  --list               print corpus names and exit
";
